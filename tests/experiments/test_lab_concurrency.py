"""Lab under concurrency: per-key single-flight, LRU cache bounds and
eviction counters, and context-local experiment labels."""

import threading

from repro.config import ExperimentTier
from repro.experiments import lab as lab_module
from repro.experiments.lab import Lab

TIER = ExperimentTier(name="labcc", spec_inputs=1, spec_slices=1, lcf_slices=1)
INSTR = 20_000
SLICE = 10_000


def _stats_tuple(result):
    return (
        result.instr_count,
        sorted((ip, c.executions, c.mispredictions) for ip, c in result.stats.items()),
    )


class TestSingleFlight:
    def test_concurrent_same_key_computes_once(self, monkeypatch):
        lab = Lab(tier=TIER, jobs=1)
        calls = []
        real = lab_module.simulate_trace

        def counting(*args, **kwargs):
            calls.append(threading.get_ident())
            return real(*args, **kwargs)

        monkeypatch.setattr(lab_module, "simulate_trace", counting)
        workers = 6
        results = [None] * workers
        barrier = threading.Barrier(workers)

        def worker(slot):
            barrier.wait()
            results[slot] = lab.simulate(
                "game", 0, "tage-sc-l-8kb",
                instructions=INSTR, slice_instructions=SLICE,
            )

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        # Followers join the leader's flight and read its published result.
        assert all(r is results[0] for r in results)

    def test_concurrent_distinct_keys_all_resolve(self):
        lab = Lab(tier=TIER, jobs=1)
        predictors = ["bimodal", "gshare", "two-level-local", "tage-sc-l-8kb"]
        results = {}
        barrier = threading.Barrier(len(predictors))

        def worker(predictor):
            barrier.wait()
            results[predictor] = lab.simulate(
                "game", 0, predictor, instructions=INSTR, slice_instructions=SLICE
            )

        threads = [
            threading.Thread(target=worker, args=(p,)) for p in predictors
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for predictor in predictors:
            assert results[predictor].predictor_name == predictor

    def test_failed_leader_releases_followers(self, monkeypatch):
        """A leader that raises must wake waiters, and a waiter must retry
        (becoming the new leader) instead of hanging or caching the error."""
        lab = Lab(tier=TIER, jobs=1)
        real = lab_module.simulate_trace
        calls = []
        fail_first = threading.Event()

        def flaky(*args, **kwargs):
            calls.append(1)
            if not fail_first.is_set():
                fail_first.set()
                raise RuntimeError("injected leader failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(lab_module, "simulate_trace", flaky)
        outcomes = []
        started = threading.Barrier(2)

        def worker():
            started.wait()
            try:
                outcomes.append(
                    lab.simulate(
                        "game", 0, "bimodal",
                        instructions=INSTR, slice_instructions=SLICE,
                    )
                )
            except RuntimeError:
                outcomes.append(None)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "a waiter hung"
        successes = [o for o in outcomes if o is not None]
        assert successes, "no caller recovered after the injected failure"
        assert successes[0].predictor_name == "bimodal"


class TestLruBounds:
    def test_trace_cache_bounded_with_eviction_counter(
        self, monkeypatch, obs_enabled
    ):
        monkeypatch.setenv("REPRO_LAB_TRACE_CACHE", "2")
        lab = Lab(tier=TIER, jobs=1)
        for extra in range(3):
            lab.trace("game", 0, 10_000 + extra * 1_000)
        assert len(lab._traces) == 2
        counters = obs_enabled.counters_dict()
        assert counters.get("lab.mem.evicted", 0) >= 1
        assert counters.get("lab.mem.evicted.traces", 0) >= 1

    def test_results_identical_after_eviction(self, monkeypatch):
        monkeypatch.setenv("REPRO_LAB_SIM_CACHE", "1")
        lab = Lab(tier=TIER, jobs=1)
        first = lab.simulate(
            "game", 0, "bimodal", instructions=INSTR, slice_instructions=SLICE
        )
        lab.simulate(
            "game", 0, "gshare", instructions=INSTR, slice_instructions=SLICE
        )
        # bimodal was evicted; the recompute must be bit-identical.
        again = lab.simulate(
            "game", 0, "bimodal", instructions=INSTR, slice_instructions=SLICE
        )
        assert again is not first
        assert _stats_tuple(again) == _stats_tuple(first)

    def test_nonpositive_cap_means_unbounded(self, monkeypatch, obs_enabled):
        monkeypatch.setenv("REPRO_LAB_TRACE_CACHE", "0")
        lab = Lab(tier=TIER, jobs=1)
        for extra in range(4):
            lab.trace("game", 0, 10_000 + extra * 1_000)
        assert len(lab._traces) == 4
        assert obs_enabled.counters_dict().get("lab.mem.evicted", 0) == 0


class TestExperimentLabels:
    def test_labels_are_context_local(self):
        """Two threads inside different experiment() blocks each see their
        own label — the old shared-attribute bug bled labels across
        concurrent requests."""
        lab = Lab(tier=TIER, jobs=1)
        barrier = threading.Barrier(2)
        seen = {}

        def worker(name):
            with lab.experiment(name):
                barrier.wait()  # both threads are inside their blocks now
                seen[name] = Lab.current_experiment()

        threads = [
            threading.Thread(target=worker, args=(name,)) for name in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {"a": "a", "b": "b"}
        assert Lab.current_experiment() is None

    def test_begin_experiment_still_labels(self):
        lab = Lab(tier=TIER, jobs=1)
        lab.begin_experiment("imperative")
        assert Lab.current_experiment() == "imperative"
        lab.begin_experiment(None)
        assert Lab.current_experiment() is None

    def test_nested_blocks_restore(self):
        lab = Lab(tier=TIER, jobs=1)
        with lab.experiment("outer"):
            with lab.experiment("inner"):
                assert Lab.current_experiment() == "inner"
            assert Lab.current_experiment() == "outer"
        assert Lab.current_experiment() is None
