"""Lab cache observability: hit/miss counters and invalid-cache handling."""

import logging
import pickle

import pytest

from repro.experiments.config import QUICK_TIER
from repro.experiments.lab import CACHE_VERSION, Lab

WORKLOAD = "605.mcf_s"
PREDICTOR = "tage-sc-l-8kb"
INSTRUCTIONS = 30_000


def _sim(lab):
    return lab.simulate(WORKLOAD, 0, PREDICTOR, instructions=INSTRUCTIONS)


def _disk_path(lab):
    from repro.experiments.config import SLICE_INSTRUCTIONS

    return lab._disk_path((WORKLOAD, 0, INSTRUCTIONS, PREDICTOR, SLICE_INSTRUCTIONS))


class TestCacheCounters:
    def test_miss_then_memory_hit(self, obs_enabled):
        lab = Lab(tier=QUICK_TIER)
        _sim(lab)
        counters = obs_enabled.counters_dict()
        assert counters["lab.sim.cache_miss"] == 1
        assert "lab.sim.cache_hit.memory" not in counters
        _sim(lab)
        _sim(lab)
        counters = obs_enabled.counters_dict()
        assert counters["lab.sim.cache_miss"] == 1
        assert counters["lab.sim.cache_hit.memory"] == 2

    def test_trace_counters(self, obs_enabled):
        lab = Lab(tier=QUICK_TIER)
        lab.trace(WORKLOAD, 0, instructions=INSTRUCTIONS)
        lab.trace(WORKLOAD, 0, instructions=INSTRUCTIONS)
        counters = obs_enabled.counters_dict()
        assert counters["lab.trace.build"] == 1
        assert counters["lab.trace.cache_hit"] == 1

    def test_disk_hit_and_store(self, obs_enabled, tmp_path):
        lab1 = Lab(tier=QUICK_TIER, cache_dir=str(tmp_path))
        _sim(lab1)
        lab2 = Lab(tier=QUICK_TIER, cache_dir=str(tmp_path))
        _sim(lab2)
        counters = obs_enabled.counters_dict()
        assert counters["lab.sim.cache_store"] == 1
        assert counters["lab.sim.cache_hit.disk"] == 1
        assert counters["lab.sim.cache_miss"] == 1

    def test_simulate_span_recorded(self, obs_enabled):
        from repro.obs.spans import span_trees

        lab = Lab(tier=QUICK_TIER)
        _sim(lab)
        roots = [t for t in span_trees() if t["name"] == "lab.simulate"]
        assert roots and roots[0]["attrs"]["workload"] == WORKLOAD

    def test_disabled_mode_collects_nothing(self, obs_disabled):
        lab = Lab(tier=QUICK_TIER)
        _sim(lab)
        _sim(lab)
        assert obs_disabled.counters_dict() == {}
        assert obs_disabled.timers_dict() == {}


class TestInvalidDiskCache:
    @pytest.fixture(autouse=True)
    def _propagate_to_caplog(self):
        # configure_logging() sets repro.propagate=False (own handler); undo
        # for the test so caplog's root-logger handler sees the warnings.
        root = logging.getLogger("repro")
        before = root.propagate
        root.propagate = True
        yield
        root.propagate = before

    @pytest.fixture
    def warm_cache(self, obs_enabled, tmp_path):
        lab = Lab(tier=QUICK_TIER, cache_dir=str(tmp_path))
        reference = _sim(lab)
        return tmp_path, reference

    def _reload(self, tmp_path):
        return Lab(tier=QUICK_TIER, cache_dir=str(tmp_path))

    def test_corrupt_pickle_recomputes_with_warning(
        self, obs_enabled, warm_cache, caplog
    ):
        tmp_path, reference = warm_cache
        lab = self._reload(tmp_path)
        _disk_path(lab).write_bytes(b"not a pickle")
        with caplog.at_level(logging.WARNING, logger="repro.lab"):
            result = _sim(lab)
        assert result.mispredictions == reference.mispredictions
        counters = obs_enabled.counters_dict()
        assert counters["lab.cache.invalid"] == 1
        # An unreadable entry also increments the dedicated I/O-failure
        # counter (distinguishing it from well-formed-but-stale payloads).
        assert counters["lab.cache.load_error"] == 1
        assert any(
            "invalid disk cache" in rec.message and "unreadable" in rec.message
            for rec in caplog.records
        )

    def test_stale_version_recomputes_with_warning(
        self, obs_enabled, warm_cache, caplog
    ):
        tmp_path, reference = warm_cache
        lab = self._reload(tmp_path)
        path = _disk_path(lab)
        with open(path, "wb") as f:
            pickle.dump({"cache_version": CACHE_VERSION - 1, "result": reference}, f)
        with caplog.at_level(logging.WARNING, logger="repro.lab"):
            result = _sim(lab)
        assert result.mispredictions == reference.mispredictions
        counters = obs_enabled.counters_dict()
        assert counters["lab.cache.invalid"] == 1
        # Stale-but-readable payloads are not I/O failures.
        assert "lab.cache.load_error" not in counters
        assert any("stale cache version" in rec.message for rec in caplog.records)

    def test_recompute_overwrites_bad_entry(self, obs_enabled, warm_cache):
        tmp_path, reference = warm_cache
        lab = self._reload(tmp_path)
        path = _disk_path(lab)
        path.write_bytes(b"garbage")
        _sim(lab)
        # A fresh lab now loads the rewritten entry cleanly from disk.
        lab2 = self._reload(tmp_path)
        result = _sim(lab2)
        assert result.mispredictions == reference.mispredictions
        counters = obs_enabled.counters_dict()
        assert counters["lab.cache.invalid"] == 1
        assert counters["lab.sim.cache_hit.disk"] == 1
