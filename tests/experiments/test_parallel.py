"""Parallel simulation engine: serial equivalence, picklability, and
concurrent shared-cache behavior."""

import logging
import os
import pickle
import threading

import pytest

from repro.config import ExperimentTier
from repro.experiments.lab import CACHE_VERSION, Lab, PREDICTOR_FACTORIES
from repro.experiments.plans import EXPERIMENT_PLANS
from repro.parallel.jobs import (
    BatchSimJob,
    SimJob,
    estimated_cost,
    predictor_weight,
    run_sim_job,
)
from repro.parallel.scheduler import (
    ParallelScheduler,
    _AttemptOutcome,
    resolve_jobs,
)
from repro.workloads import WORKLOADS_BY_NAME

#: One input, one slice: the equivalence sweeps stay fast even though every
#: job is simulated twice (serial reference + parallel).
TEST_TIER = ExperimentTier(name="ptest", spec_inputs=1, spec_slices=1, lcf_slices=1)

#: Shrunk trace/slice lengths for the fork-heavy tests.
TINY_INSTRUCTIONS = 20_000
TINY_SLICE = 10_000


def _tiny(jobs):
    return [
        BatchSimJob(j.workload, j.input_index, TINY_INSTRUCTIONS, j.predictors, TINY_SLICE)
        if isinstance(j, BatchSimJob)
        else SimJob(j.workload, j.input_index, TINY_INSTRUCTIONS, j.predictor, TINY_SLICE)
        for j in jobs
    ]


def _members(job):
    """The per-predictor SimJobs a job populates (itself, for SimJob)."""
    if isinstance(job, BatchSimJob):
        return [
            SimJob(job.workload, job.input_index, job.instructions, p,
                   job.slice_instructions)
            for p in job.predictors
        ]
    return [job]


def _stats_tuple(result):
    """Everything the experiments read, in comparable form."""
    return (
        result.predictor_name,
        result.accuracy,
        result.mpki,
        result.instr_count,
        sorted(
            (ip, c.executions, c.mispredictions) for ip, c in result.stats.items()
        ),
        [
            sorted((ip, c.executions, c.mispredictions) for ip, c in s.items())
            for s in result.slice_stats
        ],
    )


class TestParallelSerialEquivalence:
    @pytest.mark.parametrize("experiment", ["table1", "fig7"])
    def test_jobs4_matches_jobs1(self, experiment):
        serial = Lab(tier=TEST_TIER, jobs=1)
        with Lab(tier=TEST_TIER, jobs=4) as parallel:
            jobs = _tiny(EXPERIMENT_PLANS[experiment](parallel))
            dispatched = parallel.prefetch(jobs)
            assert dispatched == len(jobs)
            for job in jobs:
                for member in _members(job):
                    a = serial.simulate(
                        member.workload, member.input_index, member.predictor,
                        instructions=member.instructions,
                        slice_instructions=member.slice_instructions,
                    )
                    b = parallel.simulate(
                        member.workload, member.input_index, member.predictor,
                        instructions=member.instructions,
                        slice_instructions=member.slice_instructions,
                    )
                    assert _stats_tuple(a) == _stats_tuple(b)

    def test_prefetch_results_come_from_cache(self, obs_enabled):
        with Lab(tier=TEST_TIER, jobs=2) as lab:
            jobs = _tiny(EXPERIMENT_PLANS["fig8"](lab))[:2]
            lab.prefetch(jobs)
            before = obs_enabled.counter("lab.sim.cache_miss").value
            for job in jobs:
                for member in _members(job):
                    lab.simulate(
                        member.workload, member.input_index, member.predictor,
                        instructions=member.instructions,
                        slice_instructions=member.slice_instructions,
                    )
            assert obs_enabled.counter("lab.sim.cache_miss").value == before
            assert obs_enabled.counter("lab.sim.cache_hit.memory").value >= len(jobs)


class TestLongestJobFirst:
    def test_predictor_weight_separates_families(self):
        assert predictor_weight("tage-sc-l-8kb") > predictor_weight("bimodal")
        assert predictor_weight("tage-sc-l-1024kb") == predictor_weight("tage-sc-l-8kb")

    def test_estimated_cost_scales_with_instructions_and_members(self):
        small = SimJob("game", 0, 1_000, "bimodal", 500)
        big = SimJob("game", 0, 2_000, "bimodal", 500)
        tage = SimJob("game", 0, 1_000, "tage-sc-l-8kb", 500)
        batch = BatchSimJob(
            "game", 0, 1_000, ("tage-sc-l-8kb", "tage-sc-l-64kb"), 500
        )
        assert estimated_cost(big) == 2 * estimated_cost(small)
        assert estimated_cost(tage) > estimated_cost(big)
        assert estimated_cost(batch) == 2 * estimated_cost(tage)

    def test_run_submits_longest_first_and_records_estimate(
        self, monkeypatch, obs_enabled
    ):
        seen = []

        def fake_attempt(self, jobs, on_result):
            seen.extend(jobs)
            for job in jobs:
                on_result(job, None)
            return _AttemptOutcome()

        monkeypatch.setattr(ParallelScheduler, "_run_attempt", fake_attempt)
        jobs = [
            SimJob("game", 0, 1_000, "bimodal", 500),
            SimJob("game", 0, 1_000, "tage-sc-l-8kb", 500),
            SimJob("game", 0, 2_000, "tage-sc-l-64kb", 500),
            SimJob("game", 0, 1_000, "gshare", 500),
        ]
        sched = ParallelScheduler(jobs=2)
        try:
            failed = sched.run(jobs, lambda _j, _r: None)
        finally:
            sched.close()
        assert failed == 0
        assert [j.predictor for j in seen] == [
            "tage-sc-l-64kb", "tage-sc-l-8kb", "bimodal", "gshare"
        ]  # heavy first; equal-cost jobs keep their plan order (stable sort)
        counters = obs_enabled.counters_dict()
        assert counters["lab.parallel.schedule.jobs"] == 4
        want_total = int(sum(estimated_cost(j) for j in jobs))
        assert counters["lab.parallel.schedule.est_cost"] == want_total
        assert obs_enabled.gauge("lab.parallel.schedule.est_cost_max").value == (
            estimated_cost(jobs[2])
        )

    def test_suite_jobs_orders_heavy_families_first(self):
        from repro.experiments.plans import suite_jobs

        lab = Lab(tier=TEST_TIER, jobs=1)
        jobs = suite_jobs(lab, ["game", "rdbms"], ["bimodal", "tage-sc-l-8kb"])
        names = [j.predictor for j in jobs]
        assert names == ["tage-sc-l-8kb", "tage-sc-l-8kb", "bimodal", "bimodal"]
        # Within a family the workload-major plan order is preserved.
        assert [j.workload for j in jobs] == ["game", "rdbms", "game", "rdbms"]


class TestPicklability:
    def test_job_specs_picklable_for_every_registry_entry(self):
        for workload in WORKLOADS_BY_NAME:
            for predictor in PREDICTOR_FACTORIES:
                job = SimJob(workload, 0, 1_000, predictor, 500)
                assert pickle.loads(pickle.dumps(job)) == job

    def test_batch_job_specs_picklable(self):
        job = BatchSimJob(
            "game", 0, 1_000, ("tage-sc-l-8kb", "tage-sc-l-64kb"), 500
        )
        assert pickle.loads(pickle.dumps(job)) == job
        assert job.sim_keys() == (
            ("game", 0, 1_000, "tage-sc-l-8kb", 500),
            ("game", 0, 1_000, "tage-sc-l-64kb", 500),
        )

    def test_run_batch_sim_job_matches_members(self):
        # The worker entry point with a BatchSimJob returns one result per
        # predictor, bit-identical to running the member SimJobs.
        batch = BatchSimJob(
            "game", 0, 5_000, ("tage-sc-l-8kb", "tage-sc-l-64kb"), 2_500
        )
        _, results, report = run_sim_job(batch)
        assert report.busy_s >= 0
        assert len(results) == 2
        for member, got in zip(_members(batch), results):
            _, want, _ = run_sim_job(member)
            assert _stats_tuple(got) == _stats_tuple(want)
        clones = pickle.loads(pickle.dumps(results))
        assert [_stats_tuple(c) for c in clones] == [
            _stats_tuple(r) for r in results
        ]

    def test_run_sim_job_payload_round_trips(self):
        # Same entry point the workers execute, run in-process: the
        # returned SimulationResult must survive the pickle boundary.
        job = SimJob("605.mcf_s", 0, 5_000, "tage-sc-l-8kb", 2_500)
        returned_job, result, report = run_sim_job(job)
        assert returned_job == job
        assert report.busy_s >= 0
        clone = pickle.loads(pickle.dumps(result))
        assert _stats_tuple(clone) == _stats_tuple(result)


class TestSharedDiskCache:
    def test_two_labs_one_cache_dir_concurrent(self, tmp_path):
        labs = [Lab(tier=TEST_TIER, cache_dir=str(tmp_path)) for _ in range(2)]
        results = {}
        errors = []

        def work(i):
            try:
                results[i] = labs[i].simulate(
                    "game", 0, "tage-sc-l-8kb",
                    instructions=TINY_INSTRUCTIONS,
                    slice_instructions=TINY_SLICE,
                )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert _stats_tuple(results[0]) == _stats_tuple(results[1])
        # Atomic writes: the entry is complete and no tempfiles remain.
        assert not list(tmp_path.glob("*.tmp"))
        fresh = Lab(tier=TEST_TIER, cache_dir=str(tmp_path))
        reloaded = fresh.simulate(
            "game", 0, "tage-sc-l-8kb",
            instructions=TINY_INSTRUCTIONS,
            slice_instructions=TINY_SLICE,
        )
        assert _stats_tuple(reloaded) == _stats_tuple(results[0])

    def test_parallel_lab_shares_cache_with_serial_lab(self, tmp_path):
        with Lab(tier=TEST_TIER, cache_dir=str(tmp_path), jobs=2) as writer:
            jobs = _tiny(EXPERIMENT_PLANS["table2"](writer))[:2]
            assert writer.prefetch(jobs) == len(jobs)
            assert not list(tmp_path.glob("*.tmp"))
        reader = Lab(tier=TEST_TIER, cache_dir=str(tmp_path), jobs=2)
        # Everything is cache-planned now; nothing should be dispatched.
        assert reader.prefetch(jobs) == 0

    def test_truncated_entry_from_crashed_writer_is_recomputed(self, tmp_path):
        lab = Lab(tier=TEST_TIER, cache_dir=str(tmp_path))
        key = ("game", 0, TINY_INSTRUCTIONS, "tage-sc-l-8kb", TINY_SLICE)
        disk = lab._disk_path(key)
        disk.write_bytes(b"\x80\x04partial-pickle-from-a-crashed-writer")
        # A stray tempfile (crashed writer mid-publish) must also be inert.
        (tmp_path / (disk.name + ".12345.tmp")).write_bytes(b"garbage")
        result = lab.simulate(
            "game", 0, "tage-sc-l-8kb",
            instructions=TINY_INSTRUCTIONS,
            slice_instructions=TINY_SLICE,
        )
        assert result.stats.total_executions > 0
        # The recompute atomically replaced the truncated entry.
        with open(disk, "rb") as f:
            payload = pickle.load(f)
        assert payload["cache_version"] == CACHE_VERSION


class TestFailedJobs:
    def test_failed_job_counts_and_warns_without_killing_batch(
        self, obs_enabled, caplog
    ):
        # One job that raises in the worker (unknown workload) alongside a
        # good one: the batch completes, the failure is counted and logged,
        # and only the good result is delivered.
        sched = ParallelScheduler(jobs=2)
        bad = SimJob("not-a-workload", 0, 1_000, "tage-sc-l-8kb", 500)
        good = SimJob("game", 0, TINY_INSTRUCTIONS, "tage-sc-l-8kb", TINY_SLICE)
        delivered = []
        root = logging.getLogger("repro")
        before = root.propagate
        root.propagate = True  # let caplog's root handler see the warning
        try:
            with caplog.at_level(logging.WARNING, logger="repro.parallel"):
                failed = sched.run(
                    [bad, good], lambda job, result: delivered.append(job)
                )
        finally:
            root.propagate = before
            sched.close()
        assert failed == 1
        assert delivered == [good]
        assert obs_enabled.counters_dict()["lab.parallel.jobs.failed"] == 1
        assert any(
            "parallel job" in rec.message and "failed" in rec.message
            for rec in caplog.records
        )


class TestPlanner:
    def test_serial_lab_prefetch_is_noop(self):
        lab = Lab(tier=TEST_TIER, jobs=1)
        jobs = _tiny(EXPERIMENT_PLANS["fig7"](lab))
        assert lab.prefetch(jobs) == 0
        assert lab._scheduler is None
        assert not lab._sims  # nothing computed eagerly

    def test_prefetch_dedupes_requests_and_cached_keys(self, obs_enabled):
        with Lab(tier=TEST_TIER, jobs=2) as lab:
            job = _tiny(EXPERIMENT_PLANS["table2"](lab))[0]
            # Warm one key through the serial path first.
            lab.simulate(
                job.workload, job.input_index, job.predictor,
                instructions=job.instructions,
                slice_instructions=job.slice_instructions,
            )
            dispatched = lab.prefetch([job, job, job])
            assert dispatched == 0
            assert obs_enabled.counter("lab.parallel.jobs.requested").value == 3
            assert obs_enabled.counter("lab.parallel.jobs.cache_planned").value == 1

    def test_prefetch_accepts_tuples_with_tier_defaults(self):
        lab = Lab(tier=TEST_TIER, jobs=1)
        normalized = lab._normalize_request(("game", 0, "tage-sc-l-8kb"))
        assert normalized.instructions == lab.instructions_for("game")
        short = lab._normalize_request(("game", 0, "tage-sc-l-8kb", 123, 45))
        assert (short.instructions, short.slice_instructions) == (123, 45)

    def test_prefetch_rejects_unknown_names(self):
        lab = Lab(tier=TEST_TIER, jobs=2)
        with pytest.raises(KeyError):
            lab.prefetch([("game", 0, "not-a-predictor")])
        with pytest.raises(KeyError):
            lab.prefetch([("not-a-workload", 0, "tage-sc-l-8kb")])

    def test_every_plan_names_registered_entries(self):
        lab = Lab(tier=TEST_TIER, jobs=1)
        for name, plan in EXPERIMENT_PLANS.items():
            jobs = plan(lab)
            assert jobs, name
            for job in jobs:
                for member in _members(job):
                    assert member.predictor in PREDICTOR_FACTORIES
                    assert member.workload in WORKLOADS_BY_NAME


class TestWorkerObservability:
    def test_worker_metrics_merge_into_parent(self, obs_enabled):
        with Lab(tier=TEST_TIER, jobs=2) as lab:
            jobs = _tiny(EXPERIMENT_PLANS["fig8"](lab))[:2]
            lab.prefetch(jobs)
        counters = obs_enabled.counters_dict()
        assert counters["lab.parallel.jobs.dispatched"] == 2
        assert counters["lab.parallel.jobs.completed"] == 2
        assert counters["sim.branches"] > 0  # merged from workers
        assert obs_enabled.timer("lab.parallel.worker_busy").calls == 2
        assert obs_enabled.timer("lab.parallel.queue_wait").calls == 2
        assert 0 < obs_enabled.gauge("lab.parallel.worker_utilization").value <= 1


class TestResolveJobs:
    def test_explicit_value_wins(self):
        assert resolve_jobs(3) == 3

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs(None)
