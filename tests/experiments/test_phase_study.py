"""Shape tests for the Sec. V-B phase-aware rare-branch study."""

import pytest

from repro.core.metrics import BranchStats
from repro.experiments.phase_study import (
    compute_phase_study,
    rare_branch_accuracy,
)


class TestRareBranchAccuracy:
    def test_filters_by_executions(self):
        s = BranchStats()
        s.record_bulk(1, 10, 5)  # rare, poorly predicted
        s.record_bulk(2, 1000, 0)  # frequent, perfect
        assert rare_branch_accuracy(s, 100) == pytest.approx(0.5)
        assert rare_branch_accuracy(s, 10_000) == pytest.approx(
            1 - 5 / 1010
        )

    def test_empty_is_perfect(self):
        assert rare_branch_accuracy(BranchStats(), 100) == 1.0


class TestPhaseStudy:
    @pytest.fixture(scope="class")
    def study(self, lab):
        return compute_phase_study(lab, applications=["game", "rdbms"])

    def test_helper_improves_rare_branch_accuracy(self, study):
        # The paper's claim: long-term phase-indexed statistics recover
        # accuracy for rare branches that online structures keep forgetting.
        assert study.mean_rare_accuracy_delta > 0

    def test_helper_does_not_hurt_overall(self, study):
        assert study.mean_accuracy_delta > -0.002

    def test_overrides_are_mostly_correct(self, study):
        for row in study.rows:
            if row.overrides > 50:
                assert row.override_hit_rate > 0.55

    def test_phases_detected(self, study):
        assert all(r.phases_detected >= 2 for r in study.rows)

    def test_render(self, study):
        text = study.render()
        assert "game" in text and "rdbms" in text
