"""Fault-tolerance suite (`repro.resilience`): injected worker crashes,
transient I/O errors, corrupt cache/trace-store entries, ENOSPC, timeouts
with retry exhaustion, and checkpoint/resume — every recovery path must
produce stats bit-identical to a clean serial run."""

import json
import pickle

import pytest

from repro.config import ExperimentTier
from repro.experiments.lab import CACHE_VERSION, Lab
from repro.parallel.jobs import SimJob
from repro.parallel.scheduler import ParallelScheduler
from repro.resilience import (
    CORRUPT_PAYLOAD,
    FaultPlan,
    FaultRule,
    ResumeManifest,
)
from repro.resilience import faults as fault_mod
from repro.resilience.quarantine import QUARANTINE_DIRNAME
from repro.workloads.trace_store import TraceStore

TEST_TIER = ExperimentTier(name="rtest", spec_inputs=1, spec_slices=1, lcf_slices=1)

TINY_INSTRUCTIONS = 20_000
TINY_SLICE = 10_000

#: Three cheap independent jobs over one workload (kernel-bearing
#: predictors, so even worker-side recomputation is fast).
JOBS = [
    SimJob("game", 0, TINY_INSTRUCTIONS, predictor, TINY_SLICE)
    for predictor in ("bimodal", "gshare", "two-level-local")
]


def _stats_tuple(result):
    return (
        result.predictor_name,
        result.accuracy,
        result.mpki,
        result.instr_count,
        sorted(
            (ip, c.executions, c.mispredictions) for ip, c in result.stats.items()
        ),
        [
            sorted((ip, c.executions, c.mispredictions) for ip, c in s.items())
            for s in result.slice_stats
        ],
    )


def _simulate_all(lab, jobs=JOBS):
    return [
        _stats_tuple(
            lab.simulate(
                j.workload, j.input_index, j.predictor,
                instructions=j.instructions,
                slice_instructions=j.slice_instructions,
            )
        )
        for j in jobs
    ]


@pytest.fixture(scope="module")
def serial_reference():
    """Clean serial stats every recovery path must reproduce exactly."""
    return _simulate_all(Lab(tier=TEST_TIER, jobs=1))


@pytest.fixture
def clean_faults(monkeypatch):
    """No ambient fault plan before the test; none leaking after it."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
    fault_mod.uninstall()
    yield fault_mod
    fault_mod.uninstall()


class TestFaultSpec:
    def test_parse_counts_and_after(self):
        plan = FaultPlan.parse("seed=7;worker.crash:n=2:after=1")
        assert plan.decide("worker.crash") is None  # skipped by after=1
        assert plan.decide("worker.crash") is not None
        assert plan.decide("worker.crash") is not None
        assert plan.decide("worker.crash") is None  # n=2 budget spent
        assert plan.fired("worker.crash") == 2

    def test_probability_is_seeded_and_reproducible(self):
        decisions = [
            [
                FaultPlan.parse("seed=42;job.delay:p=0.5:secs=0.1").decide("job.delay")
                is not None
                for _ in range(1)
            ]
            for _ in range(2)
        ]
        a = FaultPlan.parse("seed=42;job.delay:p=0.5")
        b = FaultPlan.parse("seed=42;job.delay:p=0.5")
        assert [a.decide("job.delay") is not None for _ in range(32)] == [
            b.decide("job.delay") is not None for _ in range(32)
        ]
        assert decisions[0] == decisions[1]

    def test_spec_round_trips(self):
        spec = "seed=9;worker.crash:n=1;job.delay:p=0.25:secs=0.5"
        assert FaultPlan.parse(FaultPlan.parse(spec).spec()).spec() == spec

    def test_unknown_site_and_param_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("not.a.site:n=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("worker.crash:bogus=1")
        with pytest.raises(ValueError):
            FaultPlan([FaultRule("worker.crash"), FaultRule("worker.crash")])

    def test_env_spec_activates(self, clean_faults, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=1;worker.crash:n=1")
        plan = clean_faults.active()
        assert plan is not None and plan.seed == 1
        assert clean_faults.active() is plan  # cached per spec string


class TestWorkerCrashRecovery:
    def test_crash_mid_batch_retries_to_bit_identical_stats(
        self, clean_faults, obs_enabled, serial_reference
    ):
        clean_faults.install("seed=3;worker.crash:n=1")
        with Lab(tier=TEST_TIER, jobs=2) as lab:
            assert lab.prefetch(JOBS) == len(JOBS)
            stats = _simulate_all(lab)
        counters = obs_enabled.counters_dict()
        assert counters["resilience.faults.worker.crash"] == 1
        assert counters["lab.parallel.retries"] >= 1
        assert counters["lab.parallel.jobs.resubmitted"] >= 1
        assert counters.get("lab.parallel.jobs.failed", 0) == 0
        # Crash recovery must not recompute anything serially at render
        # time: every request was recovered by the resubmit.
        assert counters.get("lab.sim.cache_miss", 0) == 0
        assert stats == serial_reference

    def test_transient_oserror_is_resubmitted_not_failed(
        self, clean_faults, obs_enabled, serial_reference
    ):
        clean_faults.install("seed=3;worker.oserror:n=1")
        with Lab(tier=TEST_TIER, jobs=2) as lab:
            lab.prefetch(JOBS)
            stats = _simulate_all(lab)
        counters = obs_enabled.counters_dict()
        assert counters["lab.parallel.jobs.resubmitted"] >= 1
        assert counters.get("lab.parallel.jobs.failed", 0) == 0
        assert stats == serial_reference

    def test_deterministic_job_error_fails_fast(self, clean_faults, obs_enabled):
        clean_faults.install("seed=3;job.error:n=1")
        sched = ParallelScheduler(jobs=2, retries=2, backoff_s=0)
        delivered = []
        try:
            failed = sched.run(list(JOBS), lambda job, result: delivered.append(job))
        finally:
            sched.close()
        assert failed == 1
        assert len(delivered) == len(JOBS) - 1
        counters = obs_enabled.counters_dict()
        assert counters["lab.parallel.jobs.failed"] == 1
        # Deterministic failures are never resubmitted.
        assert "lab.parallel.jobs.resubmitted" not in counters


class TestTimeoutAndSerialFallback:
    def test_timeout_exhausts_retries_then_degrades_serially(
        self, clean_faults, obs_enabled, serial_reference
    ):
        # Every submitted job sleeps far past the 0.3s per-job timeout, so
        # both attempts expire; the scheduler must degrade to in-process
        # execution and still deliver bit-identical results.
        clean_faults.install("seed=3;job.delay:secs=60")
        sched = ParallelScheduler(jobs=2, retries=1, backoff_s=0, timeout_s=0.3)
        delivered = {}
        try:
            failed = sched.run(
                list(JOBS), lambda job, result: delivered.__setitem__(job, result)
            )
        finally:
            sched.close()
        assert failed == 0
        counters = obs_enabled.counters_dict()
        # At least one job is genuinely overdue per attempt (jobs that
        # merely shared the doomed pool are resubmitted, not counted).
        assert counters["lab.parallel.timeouts"] >= 2
        assert counters["lab.parallel.serial_fallback"] == len(JOBS)
        assert counters["lab.parallel.jobs.completed"] == len(JOBS)
        assert [_stats_tuple(delivered[j]) for j in JOBS] == serial_reference


class TestPublishFaults:
    def test_enospc_on_cache_publish_fails_soft(
        self, clean_faults, obs_enabled, tmp_path, serial_reference
    ):
        clean_faults.install("cache.enospc")
        lab = Lab(tier=TEST_TIER, cache_dir=str(tmp_path), jobs=1)
        stats = _simulate_all(lab, JOBS[:1])
        assert stats == serial_reference[:1]
        counters = obs_enabled.counters_dict()
        assert counters["lab.cache.store_failed"] >= 1
        assert "lab.sim.cache_store" not in counters
        # The entry never landed; a fresh lab recomputes to the same stats.
        clean_faults.uninstall()
        assert _simulate_all(Lab(tier=TEST_TIER, cache_dir=str(tmp_path)), JOBS[:1]) == stats

    def test_enospc_on_trace_store_publish_fails_soft(
        self, clean_faults, obs_enabled, tmp_path, mcf_trace
    ):
        clean_faults.install("trace_store.enospc")
        store = TraceStore(tmp_path)
        assert store.store("605.mcf_s", 0, 300_000, mcf_trace.trace) is None
        assert obs_enabled.counters_dict()["lab.trace_store.store_failed"] == 1

    def test_corrupted_cache_entry_is_quarantined_and_recomputed(
        self, clean_faults, obs_enabled, tmp_path, serial_reference
    ):
        # The fault corrupts the entry *after* publication (bit-rot / torn
        # write); the next lab must quarantine it and recompute.
        clean_faults.install("cache.corrupt:n=1")
        lab = Lab(tier=TEST_TIER, cache_dir=str(tmp_path))
        _simulate_all(lab, JOBS[:1])
        disk = lab._disk_path(JOBS[0].key())
        assert disk.read_bytes() == CORRUPT_PAYLOAD
        clean_faults.uninstall()

        fresh = Lab(tier=TEST_TIER, cache_dir=str(tmp_path))
        assert _simulate_all(fresh, JOBS[:1]) == serial_reference[:1]
        counters = obs_enabled.counters_dict()
        assert counters["lab.cache.quarantined"] == 1
        quarantined = list((tmp_path / QUARANTINE_DIRNAME).iterdir())
        assert [p.name for p in quarantined] == [disk.name]
        # The recompute re-published a valid entry at the original path.
        assert pickle.loads(disk.read_bytes())["cache_version"] == CACHE_VERSION


class TestTraceStoreQuarantine:
    def test_corrupt_npz_entry_quarantined_then_clean_miss(
        self, obs_enabled, tmp_path, mcf_trace
    ):
        store = TraceStore(tmp_path)
        path = store.store("605.mcf_s", 0, 300_000, mcf_trace.trace)
        path.write_bytes(b"not an npz")
        assert store.load("605.mcf_s", 0, 300_000) is None
        counters = obs_enabled.counters_dict()
        assert counters["lab.trace_store.load_error"] == 1
        assert counters["lab.cache.quarantined"] == 1
        assert not path.exists()
        assert (tmp_path / QUARANTINE_DIRNAME / path.name).exists()
        # Second load is a clean miss: no repeated warnings/errors.
        assert store.load("605.mcf_s", 0, 300_000) is None
        counters = obs_enabled.counters_dict()
        assert counters["lab.trace_store.load_error"] == 1
        assert counters["lab.trace_store.miss"] == 1


class TestCacheAliasRegression:
    OLD_STYLE = staticmethod(
        lambda key: f"v4_{key[0]}_{key[1]}_{key[2]}_{key[3]}_{key[4]}.pkl".replace(
            "/", "_"
        )
    )

    def test_old_encoding_aliased_distinct_keys(self):
        # The pre-v5 bug this guards against: replace("/", "_") maps the
        # distinct keys ("a/b", ...) and ("a_b", ...) onto one filename.
        a = self.OLD_STYLE(("a/b", 0, 1, "p", 1))
        b = self.OLD_STYLE(("a_b", 0, 1, "p", 1))
        assert a == b

    def test_new_encoding_is_injective(self, tmp_path):
        lab = Lab(tier=TEST_TIER, cache_dir=str(tmp_path))
        a = lab._disk_path(("a/b", 0, 1, "p", 1))
        b = lab._disk_path(("a_b", 0, 1, "p", 1))
        assert a != b
        # Same for the phase-count cache and across kinds.
        assert lab._cache_filename("phases", ("a/b", 0, 1, 2)) != lab._cache_filename(
            "phases", ("a_b", 0, 1, 2)
        )
        assert lab._cache_filename("sim", ("x", 0, 1, "p", 1)) != lab._cache_filename(
            "phases", ("x", 0, 1, "p", 1)
        )

    def test_aliased_payload_is_never_served(self, tmp_path, serial_reference):
        # End to end: warm one key, then request a would-have-aliased key;
        # it must be computed, not served from the other key's file.
        lab = Lab(tier=TEST_TIER, cache_dir=str(tmp_path))
        a = _simulate_all(lab, JOBS[:1])
        fresh = Lab(tier=TEST_TIER, cache_dir=str(tmp_path))
        b = fresh.simulate(
            JOBS[0].workload, JOBS[0].input_index, "gshare",
            instructions=JOBS[0].instructions,
            slice_instructions=JOBS[0].slice_instructions,
        )
        assert a == serial_reference[:1]
        assert _stats_tuple(b) == serial_reference[1]


class TestResumeManifest:
    KEY_A = ("game", 0, 20_000, "bimodal", 10_000)
    KEY_B = ("game", 0, 20_000, "gshare", 10_000)

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "m.jsonl"
        manifest = ResumeManifest(path, CACHE_VERSION)
        manifest.load()
        manifest.mark(self.KEY_A, experiment="table1")
        manifest.mark(self.KEY_B)
        manifest.mark(self.KEY_A)  # idempotent
        manifest.close()
        reloaded = ResumeManifest(path, CACHE_VERSION)
        assert reloaded.load() == 2
        assert self.KEY_A in reloaded and self.KEY_B in reloaded
        assert reloaded.completed() == {self.KEY_A, self.KEY_B}

    def test_torn_tail_line_is_skipped(self, tmp_path, obs_enabled):
        path = tmp_path / "m.jsonl"
        manifest = ResumeManifest(path, CACHE_VERSION)
        manifest.load()
        manifest.mark(self.KEY_A)
        manifest.close()
        with open(path, "a") as f:
            f.write('{"key": ["tru')  # killed mid-append
        reloaded = ResumeManifest(path, CACHE_VERSION)
        assert reloaded.load() == 1
        assert obs_enabled.counters_dict()["lab.resume.invalid_line"] == 1

    def test_stale_cache_version_resets(self, tmp_path, obs_enabled):
        path = tmp_path / "m.jsonl"
        old = ResumeManifest(path, CACHE_VERSION - 1)
        old.load()
        old.mark(self.KEY_A)
        old.close()
        manifest = ResumeManifest(path, CACHE_VERSION)
        assert manifest.load() == 0
        assert obs_enabled.counters_dict()["lab.resume.reset"] == 1
        header = json.loads(path.read_text().splitlines()[0])
        assert header["cache_version"] == CACHE_VERSION


class TestResumeAfterInterrupt:
    def test_resume_dispatches_only_missing_requests(
        self, obs_enabled, tmp_path, serial_reference
    ):
        # "Interrupted" sweep: only the first job completed and was
        # checkpointed before the kill.
        with Lab(tier=TEST_TIER, cache_dir=str(tmp_path), jobs=2, resume=True) as lab:
            assert lab.prefetch(JOBS[:1]) == 1
        before = obs_enabled.counter("lab.parallel.jobs.dispatched").value
        # The restarted sweep asks for everything; only the two missing
        # requests may be dispatched (acceptance: lab.parallel.jobs.dispatched).
        with Lab(tier=TEST_TIER, cache_dir=str(tmp_path), jobs=2, resume=True) as lab:
            assert lab.prefetch(JOBS) == 2
            stats = _simulate_all(lab)
        assert obs_enabled.counter("lab.parallel.jobs.dispatched").value - before == 2
        assert obs_enabled.counter("lab.resume.planned").value == 1
        assert stats == serial_reference

    def test_manifest_plans_away_completed_work_without_touching_disk(
        self, obs_enabled, tmp_path, serial_reference
    ):
        with Lab(tier=TEST_TIER, cache_dir=str(tmp_path), jobs=2, resume=True) as lab:
            assert lab.prefetch(JOBS) == len(JOBS)
        # Destroy the cached payloads but keep the manifest: planning must
        # still skip the checkpointed keys (no disk reads)...
        for pkl in tmp_path.glob("*.pkl"):
            pkl.unlink()
        with Lab(tier=TEST_TIER, cache_dir=str(tmp_path), jobs=2, resume=True) as lab:
            assert lab.prefetch(JOBS) == 0
            assert obs_enabled.counter("lab.resume.planned").value == len(JOBS)
            # ...and because the manifest is advisory, the render-path
            # recompute still restores bit-identical results.
            stats = _simulate_all(lab)
        assert stats == serial_reference

    def test_resume_without_cache_dir_is_ignored(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        lab = Lab(tier=TEST_TIER, resume=True)
        assert lab.manifest is None


class TestPoolLifecycle:
    def test_no_child_processes_outlive_lab_close(self):
        with Lab(tier=TEST_TIER, jobs=2) as lab:
            lab.prefetch(JOBS[:1])
            procs = list(lab._scheduler._pool._processes.values())
            assert procs and any(p.is_alive() for p in procs)
        assert all(not p.is_alive() for p in procs)

    def test_close_is_idempotent(self):
        lab = Lab(tier=TEST_TIER, jobs=2)
        lab.prefetch(JOBS[:1])
        lab.close()
        lab.close()

    def test_spawn_context_regression(self, serial_reference):
        # The docstring promises fork where available, but worker_init and
        # job pickling must also survive a spawn pool (macOS/Windows
        # platform defaults).
        sched = ParallelScheduler(jobs=1, start_method="spawn")
        delivered = {}
        try:
            failed = sched.run(
                JOBS[:1], lambda job, result: delivered.__setitem__(job, result)
            )
        finally:
            sched.close()
        assert failed == 0
        assert _stats_tuple(delivered[JOBS[0]]) == serial_reference[0]

    def test_default_start_method_is_fork_where_available(self):
        import multiprocessing

        sched = ParallelScheduler(jobs=1)
        if "fork" in multiprocessing.get_all_start_methods():
            assert sched.start_method == "fork"
        else:
            assert sched.start_method == "spawn"


class TestClockSkew:
    def test_negative_delta_counted_not_recorded(self, obs_enabled):
        sched = ParallelScheduler(jobs=1)
        sched._record_queue_wait(-0.25)
        assert obs_enabled.counters_dict()["lab.parallel.clock_skew"] == 1
        assert obs_enabled.timer("lab.parallel.queue_wait").calls == 0

    def test_positive_delta_recorded(self, obs_enabled):
        sched = ParallelScheduler(jobs=1)
        sched._record_queue_wait(0.125)
        timer = obs_enabled.timer("lab.parallel.queue_wait")
        assert timer.calls == 1
        assert timer.total_s == pytest.approx(0.125)
        assert "lab.parallel.clock_skew" not in obs_enabled.counters_dict()
