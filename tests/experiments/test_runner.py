"""Tests for the CLI experiment runner."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main, run_experiments


class TestRunner:
    def test_every_table_and_figure_registered(self):
        for name in [
            "table1", "table2", "table3",
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "fig8", "fig9", "fig10",
            "allocation", "cnn", "phase",
        ]:
            assert name in EXPERIMENTS

    def test_unknown_experiment_rejected(self, lab):
        with pytest.raises(ValueError):
            run_experiments(["nope"], lab)

    def test_run_selected(self, lab):
        lines = []
        outputs = run_experiments(["fig9"], lab, echo=lines.append)
        assert len(outputs) == 1
        assert "recurrence" in outputs[0]
        assert any("fig9" in line for line in lines)

    def test_cli_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig10" in out

    def test_cli_unknown_name_errors(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-an-experiment"])
