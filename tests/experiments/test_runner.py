"""Tests for the CLI experiment runner."""

import json
import logging

import pytest

from repro.experiments.runner import EXPERIMENTS, main, run_experiments


class TestRunner:
    def test_every_table_and_figure_registered(self):
        for name in [
            "table1", "table2", "table3",
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "fig8", "fig9", "fig10",
            "allocation", "cnn", "phase",
        ]:
            assert name in EXPERIMENTS

    def test_unknown_experiment_rejected(self, lab):
        with pytest.raises(ValueError):
            run_experiments(["nope"], lab)

    def test_run_selected(self, lab):
        lines = []
        outputs = run_experiments(["fig9"], lab, echo=lines.append)
        assert len(outputs) == 1
        assert "recurrence" in outputs[0]
        assert any("fig9" in line for line in lines)

    def test_cli_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig10" in out

    def test_cli_unknown_name_errors(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-an-experiment"])

    def test_cli_jobs_flag(self, capsys):
        # fig9 is trace-only (no planned simulations), so this exercises
        # the full CLI path with a worker-enabled Lab without forking.
        assert main(["fig9", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 workers" in out

    def test_run_experiments_serial_header_unchanged(self, lab):
        # jobs == 1 must keep the historical header byte-for-byte.
        lines = []
        run_experiments(["fig9"], lab, echo=lines.append)
        assert lines[0] == f"Running 1 experiment(s) at tier '{lab.tier.name}'\n"

    def test_elapsed_display_is_adaptive(self, lab):
        # Sub-second experiments must not be shown as "(0s)".
        lines = []
        run_experiments(["fig9"], lab, echo=lines.append)
        header = next(line for line in lines if "fig9 (" in line)
        assert "(0s)" not in header
        assert "ms)" in header or "s)" in header


class TestRunnerObservability:
    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        from repro import obs

        was_enabled = obs.is_enabled()
        obs.reset()
        yield
        obs.reset()
        (obs.enable if was_enabled else obs.disable)()

    def test_metrics_out_writes_valid_json(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main(["fig9", "--metrics-out", str(out)]) == 0
        with open(out) as f:
            doc = json.load(f)
        assert doc["schema"] == "repro.obs/v2"
        assert doc["meta"]["tier"] == "quick"
        assert doc["counters"]["lab.trace.build"] >= 1
        assert [s["name"] for s in doc["spans"]] == ["fig9"]
        assert "-- metrics" in capsys.readouterr().out

    def test_log_level_flag_sets_hierarchy_level(self, tmp_path):
        assert main(["fig9", "--log-level", "info"]) == 0
        assert logging.getLogger("repro").level == logging.INFO
        assert main(["fig9", "--log-level", "warning"]) == 0
        assert logging.getLogger("repro").level == logging.WARNING

    def test_no_metrics_flag_means_no_summary(self, capsys):
        assert main(["fig9"]) == 0
        assert "-- metrics" not in capsys.readouterr().out

    def test_trace_out_writes_timeline_json(self, tmp_path, capsys):
        from repro.obs import trace

        out = tmp_path / "t.json"
        try:
            assert main(["fig9", "--trace-out", str(out)]) == 0
        finally:
            trace.disable_tracing()
            trace.reset_trace()
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert "tier" in doc["otherData"]
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert "fig9" in names  # the experiment span landed on the timeline
        assert "timeline trace written" in capsys.readouterr().out

    def test_trace_out_env_var_equivalent(self, tmp_path, monkeypatch):
        from repro.obs import trace

        out = tmp_path / "env.json"
        monkeypatch.setenv("REPRO_TRACE_OUT", str(out))
        try:
            assert main(["fig9"]) == 0
        finally:
            trace.disable_tracing()
            trace.reset_trace()
        assert json.loads(out.read_text())["traceEvents"]

    def test_introspect_out_writes_reports_json(self, tmp_path):
        from repro.obs import introspect

        out = tmp_path / "i.json"
        saved = introspect._ENABLED
        try:
            # fig9 is trace-only, so this exercises the flag plumbing and
            # the (empty-report) export without paying for a simulation.
            assert main(["fig9", "--introspect-out", str(out)]) == 0
        finally:
            introspect._ENABLED = saved
            introspect.reset_introspection()
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.obs.introspect/v1"
        assert doc["reports"] == []
