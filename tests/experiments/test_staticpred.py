"""Static-vs-dynamic cross-validation: tallies, recall, and wiring."""

from repro.experiments.staticpred import (
    EASY,
    EXPECTED_LABELS,
    H2P,
    H2P_RECALL_GATE,
    ClassTally,
    StaticPredReport,
    WorkloadValidation,
    validate_workload,
)
from repro.staticcheck.predictability import Verdict


def make_row(category, h2p_found, h2p_total, benchmark="bench", tested=10, matching=9):
    return WorkloadValidation(
        benchmark=benchmark,
        category=category,
        observed_ips=50,
        tallies={
            verdict: ClassTally(tested=tested, matching=matching)
            for verdict in Verdict
        },
        h2p_found=h2p_found,
        h2p_total=h2p_total,
        missed_h2ps=(),
    )


class TestTallies:
    def test_precision_over_tested(self):
        assert ClassTally(tested=4, matching=3).precision == 0.75

    def test_empty_class_is_vacuously_precise(self):
        assert ClassTally(tested=0, matching=0).precision == 1.0

    def test_recall_with_no_h2ps_is_one(self):
        assert make_row("specint", 0, 0).recall == 1.0

    def test_expected_labels_cover_every_verdict(self):
        assert set(EXPECTED_LABELS) == set(Verdict)

    def test_h2p_candidates_expect_dynamic_h2p(self):
        assert EXPECTED_LABELS[Verdict.H2P_CANDIDATE] == (H2P,)
        assert EASY in EXPECTED_LABELS[Verdict.CONST]


class TestReport:
    def test_gate_applies_to_specint_only(self):
        report = StaticPredReport(
            rows=(make_row("specint", 9, 10), make_row("lcf", 0, 10))
        )
        assert report.specint_recall == 0.9
        assert report.ok  # the LCF misses must not trip the gate

    def test_below_gate_fails(self):
        report = StaticPredReport(rows=(make_row("specint", 1, 10),))
        assert report.specint_recall < H2P_RECALL_GATE
        assert not report.ok

    def test_render_reports_both_categories(self):
        report = StaticPredReport(
            rows=(make_row("specint", 9, 10), make_row("lcf", 5, 10))
        )
        out = report.render()
        assert "H2P-candidate recall, specint: 9/10" in out
        assert "H2P-candidate recall, lcf: 5/10" in out
        assert "not gated" in out
        assert f"gate >= {H2P_RECALL_GATE}" in out

    def test_render_lists_verdict_precision(self):
        out = StaticPredReport(rows=(make_row("specint", 9, 10),)).render()
        for verdict in Verdict:
            assert verdict.value in out


class TestValidateWorkload:
    def test_quick_tier_game_workload(self, lab):
        # The game kernel is the H2P showcase: the screen must find H2Ps
        # and the static engine must flag them.
        from repro.workloads import WORKLOADS_BY_NAME

        spec = WORKLOADS_BY_NAME["game"]
        row = validate_workload(lab, spec, [0])
        assert row.category == "lcf"
        assert row.observed_ips > 0
        assert row.h2p_total > 0
        tested = sum(t.tested for t in row.tallies.values())
        assert tested > 0


class TestWiring:
    def test_registered_as_experiment(self):
        from repro.experiments.plans import EXPERIMENT_PLANS
        from repro.experiments.runner import EXPERIMENTS

        assert "staticpred" in EXPERIMENTS
        assert "staticpred" in EXPERIMENT_PLANS
