"""Shape tests for the table experiments (paper Tables I-III).

These assert the paper's *qualitative structure* on the quick tier: which
benchmarks are hardest, where H2Ps concentrate, and that dependency branches
exist within history reach but smear across positions.
"""

import numpy as np
import pytest

from repro.experiments.table1 import compute_table1
from repro.experiments.table2 import compute_table2
from repro.experiments.table3 import compute_table3


@pytest.fixture(scope="module")
def table1(lab):
    return compute_table1(lab, with_phases=True)


@pytest.fixture(scope="module")
def table2(lab):
    return compute_table2(lab)


@pytest.fixture(scope="module")
def table3(lab):
    # Three representative benchmarks keep the dataflow-tracked runs cheap.
    return compute_table3(lab, benchmarks=["605.mcf_s", "641.leela_s", "657.xz_s"])


class TestTable1:
    def test_all_benchmarks_present(self, table1):
        assert len(table1.rows) == 9

    def test_mean_accuracy_in_paper_band(self, table1):
        # Paper: 0.952 mean under TAGE-SC-L 8KB.
        assert 0.90 <= table1.mean_accuracy <= 0.99

    def test_leela_least_predictable(self, table1):
        accs = {r.benchmark: r.avg_accuracy for r in table1.rows}
        assert min(accs, key=accs.get) == "641.leela_s"

    def test_xalancbmk_most_predictable(self, table1):
        accs = {r.benchmark: r.avg_accuracy for r in table1.rows}
        assert accs["623.xalancbmk_s"] >= sorted(accs.values())[-2] - 1e-9

    def test_excluding_h2ps_raises_accuracy(self, table1):
        for r in table1.rows:
            assert r.avg_accuracy_excl_h2ps >= r.avg_accuracy - 1e-9

    def test_small_number_of_h2ps_per_slice(self, table1):
        # Paper mean: 10 H2Ps per slice cause 55.3% of mispredictions.
        assert 1 <= table1.mean_h2ps_per_slice <= 40
        assert 0.3 <= table1.mean_mispred_share <= 0.95

    def test_leela_has_most_h2ps(self, table1):
        counts = {r.benchmark: r.h2ps_per_slice for r in table1.rows}
        top3 = sorted(counts, key=counts.get, reverse=True)[:3]
        assert "641.leela_s" in top3

    def test_h2ps_recur_across_slices(self, table1):
        for r in table1.rows:
            if r.h2ps_total:
                assert r.h2ps_per_input >= r.h2ps_per_slice * 0.5

    def test_phase_structure_detected(self, table1):
        assert any(r.avg_phases > 1 for r in table1.rows)

    def test_h2p_executions_meet_screening_floor(self, table1):
        from repro.config import H2P_MIN_EXECUTIONS

        for r in table1.rows:
            if r.h2ps_per_slice:
                assert r.avg_dyn_execs_per_h2p_per_slice >= H2P_MIN_EXECUTIONS

    def test_render_contains_all_rows(self, table1):
        text = table1.render()
        for r in table1.rows:
            assert r.benchmark in text


class TestTable2:
    def test_all_applications_present(self, table2):
        assert len(table2.rows) == 6

    def test_lcf_static_populations_larger_than_spec_median(self, table2, table1):
        spec_median = np.median(
            [r.median_static_per_slice for r in table1.rows]
        )
        assert table2.mean_static_branches > spec_median

    def test_game_extremes(self, table2):
        rows = {r.application: r for r in table2.rows}
        statics = {a: r.static_branch_ips for a, r in rows.items()}
        execs = {a: r.avg_dyn_execs_per_branch for a, r in rows.items()}
        assert max(statics, key=statics.get) == "game"
        assert min(execs, key=execs.get) == "game"
        assert max(execs, key=execs.get) == "streaming_server"

    def test_per_branch_accuracy_below_spec_aggregate(self, table2, table1):
        # Paper: LCF mean per-branch accuracy 0.85 vs SPECint 0.952.
        assert table2.mean_accuracy < table1.mean_accuracy

    def test_h2p_counts_small(self, table2):
        # Paper: 1-8 H2Ps per LCF application.
        for r in table2.rows:
            assert 0 <= r.num_h2ps <= 25

    def test_game_least_accurate(self, table2):
        accs = {r.application: r.avg_accuracy_per_branch for r in table2.rows}
        assert min(accs, key=accs.get) == "game"


class TestTable3:
    def test_dependency_branches_found(self, table3):
        assert len(table3.entries) == 3
        for e in table3.entries:
            assert e.row.num_dependency_branches >= 1

    def test_positions_within_tage_reach(self, table3):
        # Paper: max history positions fall within TAGE-SC-L 64KB's 3000.
        for e in table3.entries:
            assert e.row.max_history_position is not None
            assert e.row.max_history_position <= 3000

    def test_dependencies_smear_across_positions(self, table3):
        # The paper's key Fig. 6 observation: each dependency branch
        # appears at many different history positions.
        for e in table3.entries:
            assert e.spread.mean_positions_per_dependency >= 3

    def test_position_occurrence_nonuniform(self, table3):
        # "the likelihood of it again appearing in the same position is
        # highly non-uniform": entropy below the uniform bound.
        for e in table3.entries:
            n = len(e.profile.positions)
            if n > 1:
                assert e.spread.position_entropy_bits < np.log2(n)

    def test_fig6_series_nonempty(self, table3):
        series = table3.fig6_series()
        for name, points in series.items():
            assert points, f"no Fig. 6 points for {name}"
            counts = [c for _, _, c in points]
            assert counts == sorted(counts, reverse=True)
