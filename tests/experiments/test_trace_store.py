"""The content-addressed on-disk trace store and its Lab/worker read-through."""

import numpy as np
import pytest

from repro.experiments.config import QUICK_TIER
from repro.experiments.lab import Lab
from repro.parallel.jobs import SimJob, run_sim_job, worker_init
from repro.pipeline.simulator import simulate_trace
from repro.predictors.simple import Bimodal
from repro.workloads import (
    TRACE_VERSION,
    WORKLOADS_BY_NAME,
    TraceStore,
    trace_workload,
    workload_seed,
)

WORKLOAD = "605.mcf_s"
INSTRUCTIONS = 30_000


@pytest.fixture(scope="module")
def traced():
    return trace_workload(WORKLOADS_BY_NAME[WORKLOAD], 0, instructions=INSTRUCTIONS)


class TestStoreRoundTrip:
    def test_roundtrip_preserves_columns(self, tmp_path, traced):
        store = TraceStore(tmp_path)
        assert store.load(WORKLOAD, 0, INSTRUCTIONS) is None  # cold
        path = store.store(WORKLOAD, 0, INSTRUCTIONS, traced.trace)
        assert path is not None and path.exists()
        loaded = store.load(WORKLOAD, 0, INSTRUCTIONS)
        t = traced.trace
        assert np.array_equal(loaded.ips, t.ips)
        assert np.array_equal(loaded.taken, t.taken)
        assert np.array_equal(loaded.targets, t.targets)
        assert np.array_equal(loaded.kinds, t.kinds)
        assert np.array_equal(loaded.instr_indices, t.instr_indices)
        assert loaded.instr_count == t.instr_count

    def test_key_binds_identity_and_version(self, tmp_path):
        store = TraceStore(tmp_path)
        key = store.key(WORKLOAD, 2, 500)
        assert f"v{TRACE_VERSION}" in key
        assert f"seed{workload_seed(2)}" in key
        assert "n500" in key
        # Distinct identities map to distinct files.
        paths = {
            store.path_for(WORKLOAD, 0, 500),
            store.path_for(WORKLOAD, 1, 500),
            store.path_for(WORKLOAD, 0, 501),
            store.path_for("641.leela_s", 0, 500),
        }
        assert len(paths) == 4

    def test_corrupt_entry_fails_soft(self, tmp_path, traced, obs_enabled):
        store = TraceStore(tmp_path)
        path = store.store(WORKLOAD, 0, INSTRUCTIONS, traced.trace)
        path.write_bytes(b"not an npz")
        assert store.load(WORKLOAD, 0, INSTRUCTIONS) is None
        counters = obs_enabled.counters_dict()
        assert counters["lab.trace_store.load_error"] == 1

    def test_foreign_key_rejected(self, tmp_path, traced, obs_enabled):
        store = TraceStore(tmp_path)
        real = store.path_for(WORKLOAD, 0, INSTRUCTIONS)
        other = store.store(WORKLOAD, 1, INSTRUCTIONS, traced.trace)
        other.rename(real)  # file contents claim a different identity
        assert store.load(WORKLOAD, 0, INSTRUCTIONS) is None
        assert obs_enabled.counters_dict()["lab.trace_store.load_error"] == 1

    def test_counters(self, tmp_path, traced, obs_enabled):
        store = TraceStore(tmp_path)
        store.load(WORKLOAD, 0, INSTRUCTIONS)
        store.store(WORKLOAD, 0, INSTRUCTIONS, traced.trace)
        store.load(WORKLOAD, 0, INSTRUCTIONS)
        counters = obs_enabled.counters_dict()
        assert counters["lab.trace_store.miss"] == 1
        assert counters["lab.trace_store.store"] == 1
        assert counters["lab.trace_store.hit"] == 1


class TestLabReadThrough:
    def test_second_lab_skips_execution(self, tmp_path, obs_enabled):
        lab1 = Lab(tier=QUICK_TIER, cache_dir=str(tmp_path))
        t1 = lab1.trace(WORKLOAD, 0, instructions=INSTRUCTIONS)
        counters = obs_enabled.counters_dict()
        assert counters["exec.instructions"] > 0
        assert counters["lab.trace_store.store"] == 1

        # A fresh Lab on the same cache_dir must not execute anything.
        obs_enabled.reset()
        lab2 = Lab(tier=QUICK_TIER, cache_dir=str(tmp_path))
        t2 = lab2.trace(WORKLOAD, 0, instructions=INSTRUCTIONS)
        counters = obs_enabled.counters_dict()
        assert counters.get("exec.instructions", 0) == 0
        assert counters["lab.trace_store.hit"] == 1
        assert np.array_equal(t1.trace.ips, t2.trace.ips)
        assert np.array_equal(t1.trace.taken, t2.trace.taken)

    def test_store_hit_rebuilds_program_metadata(self, tmp_path):
        lab1 = Lab(tier=QUICK_TIER, cache_dir=str(tmp_path))
        lab1.trace(WORKLOAD, 0, instructions=INSTRUCTIONS)
        lab2 = Lab(tier=QUICK_TIER, cache_dir=str(tmp_path))
        t = lab2.trace(WORKLOAD, 0, instructions=INSTRUCTIONS)
        assert t.metadata["from_trace_store"] is True
        assert t.metadata["program"] is not None

    def test_simulations_identical_across_store_boundary(self, tmp_path):
        lab1 = Lab(tier=QUICK_TIER, cache_dir=str(tmp_path))
        r1 = lab1.simulate(WORKLOAD, 0, "bimodal", instructions=INSTRUCTIONS)
        lab2 = Lab(tier=QUICK_TIER, cache_dir=str(tmp_path))
        lab2._sims.clear()  # force re-simulation from the stored trace
        import os

        for p in tmp_path.iterdir():
            if p.name.startswith("sim_"):
                os.unlink(p)
        r2 = lab2.simulate(WORKLOAD, 0, "bimodal", instructions=INSTRUCTIONS)
        assert r1.stats._counts == r2.stats._counts

    def test_no_cache_dir_disables_store(self):
        lab = Lab(tier=QUICK_TIER)
        assert lab.trace_store is None


class TestWorkerReadThrough:
    def test_worker_loads_from_store(self, tmp_path, traced, obs_enabled):
        store = TraceStore(tmp_path)
        store.store(WORKLOAD, 0, INSTRUCTIONS, traced.trace)
        obs_enabled.reset()
        worker_init(True, None, trace_store_dir=str(tmp_path))
        try:
            import repro.parallel.jobs as jobs

            jobs._trace_cache.clear()
            job = SimJob(
                workload=WORKLOAD,
                input_index=0,
                instructions=INSTRUCTIONS,
                predictor="bimodal",
                slice_instructions=10_000,
            )
            _, result, report = run_sim_job(job)
        finally:
            worker_init(False, None)
        counters = report.metrics["counters"] if report.metrics else {}
        assert counters.get("exec.instructions", 0) == 0
        assert counters["lab.trace_store.hit"] == 1
        want = simulate_trace(traced.trace, Bimodal(), slice_instructions=10_000)
        assert result.stats._counts == want.stats._counts
