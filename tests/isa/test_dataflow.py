"""Dataflow taint tracking and dependency-branch analysis tests."""

import pytest

from repro.isa.dataflow import analyze_dependencies, top_dependency_positions
from repro.isa.executor import Executor
from repro.isa.instructions import (
    Alu,
    AluImm,
    AluOp,
    ArrayBase,
    Br,
    Cond,
    Imm,
    Jmp,
    Load,
    Nop,
    Rand,
)
from repro.isa.program import ProgramBuilder


def dependency_pair_program(gap_blocks=0):
    """Branch A tests data[i] & 1; branch B (the "H2P") tests data[i] < 50.
    Both read the same element: A is a ground-truth dependency of B."""
    b = ProgramBuilder("dep")
    b.data("d", list(range(97)))
    entry = b.block("entry")
    entry.instructions = [ArrayBase(1, "d"), Imm(2, 0)]
    entry.terminator = Jmp("loop")
    loop = b.block("loop")
    loop.instructions = [
        Alu(AluOp.ADD, 3, 1, 2),
        Load(4, 3),  # the shared datum
        AluImm(AluOp.ADD, 2, 2, 1),
        AluImm(AluOp.MOD, 2, 2, 97),
        AluImm(AluOp.AND, 5, 4, 1),
        Imm(6, 0),
    ]
    loop.terminator = Br(Cond.NE, 5, 6, "mid", "mid")  # branch A
    prev = b.block("mid")
    prev.instructions = [Nop()]
    # Optional unrelated filler branches between A and B.
    for g in range(gap_blocks):
        blk = b.block(f"gap{g}")
        blk.instructions = [Rand(10, 0, 2), Imm(11, 1)]
        nxt = b.block(f"gapj{g}")
        nxt.instructions = [Nop()]
        blk.terminator = Br(Cond.EQ, 10, 11, f"gapj{g}", f"gapj{g}")
        prev.terminator = Jmp(blk.label)
        prev = nxt
    h2p = b.block("h2p")
    h2p.instructions = [Imm(7, 50)]
    h2p.terminator = Br(Cond.LT, 4, 7, "tail", "tail")  # branch B
    prev.terminator = Jmp("h2p")
    tail = b.block("tail")
    tail.instructions = [Nop()]
    tail.terminator = Jmp("loop")
    return b.build()


class TestTaintTracking:
    def test_dependency_found_at_expected_position(self):
        prog = dependency_pair_program(gap_blocks=0)
        res = Executor(prog, track_dataflow=True).run(5000)
        h2p_ip = prog.terminator_ip("h2p")
        dep_ip = prog.terminator_ip("loop")
        profile = analyze_dependencies(res.cond_branch_events, h2p_ip, 500)
        assert profile.num_dependency_branches >= 1
        assert dep_ip in profile.dependency_branch_ips
        # A immediately precedes B: position 1 dominates.
        counter = profile.positions_for(dep_ip)
        assert counter.most_common(1)[0][0] == 1

    def test_gap_branches_shift_position(self):
        prog = dependency_pair_program(gap_blocks=2)
        res = Executor(prog, track_dataflow=True).run(5000)
        h2p_ip = prog.terminator_ip("h2p")
        dep_ip = prog.terminator_ip("loop")
        profile = analyze_dependencies(res.cond_branch_events, h2p_ip, 500)
        counter = profile.positions_for(dep_ip)
        # Two unrelated branches sit between A and B -> position 3.
        assert counter.most_common(1)[0][0] == 3

    def test_unrelated_branches_not_dependencies(self):
        prog = dependency_pair_program(gap_blocks=2)
        res = Executor(prog, track_dataflow=True).run(5000)
        h2p_ip = prog.terminator_ip("h2p")
        gap_ip = prog.terminator_ip("gap0")
        profile = analyze_dependencies(res.cond_branch_events, h2p_ip, 500)
        assert gap_ip not in profile.dependency_branch_ips

    def test_immediate_operands_carry_no_taint(self):
        b = ProgramBuilder("t")
        e = b.block("entry")
        e.instructions = [Imm(1, 1), Imm(2, 1)]
        e.terminator = Br(Cond.EQ, 1, 2, "entry", "entry")
        res = Executor(b.build(), track_dataflow=True).run(200)
        assert all(not ev.taint for ev in res.cond_branch_events)

    def test_rand_draws_are_distinct_origins(self):
        b = ProgramBuilder("t")
        e = b.block("entry")
        e.instructions = [Rand(1, 0, 2), Imm(2, 0)]
        e.terminator = Br(Cond.EQ, 1, 2, "entry", "entry")
        res = Executor(b.build(), track_dataflow=True).run(200)
        taints = [ev.taint for ev in res.cond_branch_events]
        # Each execution draws fresh input: all taints distinct.
        assert len(set(taints)) == len(taints)

    def test_window_limits_lookback(self):
        prog = dependency_pair_program(gap_blocks=0)
        res = Executor(prog, track_dataflow=True).run(5000)
        h2p_ip = prog.terminator_ip("h2p")
        # Window of 1 instruction: the dependency at the prior branch is
        # outside it.
        profile = analyze_dependencies(res.cond_branch_events, h2p_ip, 1)
        assert profile.num_dependency_branches == 0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            analyze_dependencies([], 0, 0)


class TestWindowEdgeCases:
    def test_h2p_as_first_branch_has_no_lookback(self):
        # The very first execution of the H2P has no prior conditional
        # branches at all; the scan must handle the empty history.
        prog = dependency_pair_program(gap_blocks=0)
        res = Executor(prog, track_dataflow=True).run(5000)
        h2p_ip = prog.terminator_ip("h2p")
        first = next(
            i for i, ev in enumerate(res.cond_branch_events) if ev.ip == h2p_ip
        )
        events = res.cond_branch_events[first : first + 1]
        profile = analyze_dependencies(events, h2p_ip, 500)
        assert profile.executions_analyzed == 1
        assert profile.num_dependency_branches == 0

    def test_empty_event_window_between_executions(self):
        # max_positions=0 caps the scan before any prior branch is
        # considered: every execution sees an empty dependency window.
        prog = dependency_pair_program(gap_blocks=0)
        res = Executor(prog, track_dataflow=True).run(5000)
        h2p_ip = prog.terminator_ip("h2p")
        profile = analyze_dependencies(
            res.cond_branch_events, h2p_ip, 500, max_positions=0
        )
        assert profile.executions_analyzed > 0
        assert profile.num_dependency_branches == 0

    def test_dependency_beyond_instruction_window(self):
        # With filler branches between A and B, a window that covers the
        # fillers but not A must not report A; widening the window finds it.
        prog = dependency_pair_program(gap_blocks=3)
        res = Executor(prog, track_dataflow=True).run(8000)
        h2p_ip = prog.terminator_ip("h2p")
        dep_ip = prog.terminator_ip("loop")
        narrow = analyze_dependencies(res.cond_branch_events, h2p_ip, 8)
        assert dep_ip not in narrow.dependency_branch_ips
        wide = analyze_dependencies(res.cond_branch_events, h2p_ip, 500)
        assert dep_ip in wide.dependency_branch_ips


class TestProfileHelpers:
    def test_top_positions_ordering(self):
        prog = dependency_pair_program()
        res = Executor(prog, track_dataflow=True).run(5000)
        h2p_ip = prog.terminator_ip("h2p")
        profile = analyze_dependencies(res.cond_branch_events, h2p_ip, 500)
        top = top_dependency_positions(profile, top_n=5)
        counts = [c for _, _, c in top]
        assert counts == sorted(counts, reverse=True)

    def test_min_max_positions(self):
        prog = dependency_pair_program(gap_blocks=1)
        res = Executor(prog, track_dataflow=True).run(5000)
        h2p_ip = prog.terminator_ip("h2p")
        profile = analyze_dependencies(res.cond_branch_events, h2p_ip, 500)
        assert profile.min_history_position is not None
        assert profile.min_history_position <= profile.max_history_position

    def test_empty_profile(self):
        profile = analyze_dependencies([], 123, 100)
        assert profile.executions_analyzed == 0
        assert profile.min_history_position is None
        assert profile.num_dependency_branches == 0
