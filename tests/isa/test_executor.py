"""Executor semantics tests: every instruction, control flow, budgets,
instrumentation, determinism."""

import numpy as np
import pytest

from repro.core.types import BranchKind
from repro.isa.executor import Executor
from repro.isa.instructions import (
    Alu,
    AluImm,
    AluOp,
    ArrayBase,
    Br,
    Call,
    Cond,
    Halt,
    Imm,
    Jmp,
    Load,
    Nop,
    Rand,
    Ret,
    Store,
    Switch,
    WORD_MASK,
)
from repro.isa.program import ProgramBuilder


def run_straightline(instructions, data=None, max_instructions=10_000, seed=0):
    """Run instructions once, then capture registers via a store loop."""
    b = ProgramBuilder("t")
    if data:
        for name, values in data.items():
            b.data(name, values)
    if not (data and "out" in data):
        b.data("out", [0] * 64)
    e = b.block("entry")
    e.instructions = list(instructions)
    # Store r0..r31 to out[]
    e.instructions.append(ArrayBase(63, "out"))
    for r in range(32):
        e.instructions.append(Store(r, 63, r))
    e.terminator = Halt()
    prog = b.build()
    ex = Executor(prog, seed=seed)
    ex.run(max_instructions)
    # Read back the stored registers from a fresh run's memory via result?
    # Simpler: re-execute manually — instead we re-run and inspect memory by
    # executing with max = len so memory persists... The executor does not
    # expose memory, so read registers through branch behaviour is overkill;
    # here we re-implement by returning the executor-internal state through
    # loads in a second block is unnecessary: tests use branch outcomes
    # instead.  This helper is retained for instruction-count checks only.
    return prog


def make_leaf(b, label, terminator):
    """A one-Nop block ending in ``terminator`` (Br target boilerplate)."""
    blk = b.block(label)
    blk.instructions = [Nop()]
    blk.terminator = terminator
    return blk


def branch_outcome_program(instructions, cond, s1, s2):
    """Build a program that runs ``instructions`` then branches once per
    restart; the branch stream reveals the comparison outcome."""
    b = ProgramBuilder("t")
    b.data("scratch", [0] * 8)
    e = b.block("entry")
    e.instructions = list(instructions)
    t = b.block("t")
    t.instructions = [Nop()]
    t.terminator = Halt()
    f = b.block("f")
    f.instructions = [Nop()]
    f.terminator = Halt()
    e.terminator = Br(cond, s1, s2, "t", "f")
    return b.build()


def first_branch_taken(prog, seed=0, n=64):
    res = Executor(prog, seed=seed).run(n)
    assert len(res.trace) >= 1
    return bool(res.trace.taken[0])


class TestAluSemantics:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (AluOp.ADD, 7, 5, 12),
            (AluOp.SUB, 7, 5, 2),
            (AluOp.SUB, 5, 7, (5 - 7) & WORD_MASK),
            (AluOp.XOR, 0b1100, 0b1010, 0b0110),
            (AluOp.AND, 0b1100, 0b1010, 0b1000),
            (AluOp.OR, 0b1100, 0b1010, 0b1110),
            (AluOp.MUL, 100000, 100000, (100000 * 100000) & WORD_MASK),
            (AluOp.SHL, 1, 5, 32),
            (AluOp.SHR, 32, 5, 1),
            (AluOp.MOD, 17, 5, 2),
            (AluOp.MIN, 3, 9, 3),
            (AluOp.MAX, 3, 9, 9),
        ],
    )
    def test_alu_reg_reg(self, op, a, b, expected):
        prog = branch_outcome_program(
            [Imm(1, a), Imm(2, b), Alu(op, 3, 1, 2), Imm(4, expected)],
            Cond.EQ, 3, 4,
        )
        assert first_branch_taken(prog)

    @pytest.mark.parametrize(
        "op,a,imm,expected",
        [
            (AluOp.ADD, 7, 5, 12),
            (AluOp.MOD, 29, 8, 5),
            (AluOp.SHR, 0b1000, 2, 0b10),
            (AluOp.MIN, 9, 4, 4),
        ],
    )
    def test_alu_imm(self, op, a, imm, expected):
        prog = branch_outcome_program(
            [Imm(1, a), AluImm(op, 3, 1, imm), Imm(4, expected)],
            Cond.EQ, 3, 4,
        )
        assert first_branch_taken(prog)

    def test_mod_by_zero_yields_zero(self):
        prog = branch_outcome_program(
            [Imm(1, 9), Imm(2, 0), Alu(AluOp.MOD, 3, 1, 2), Imm(4, 0)],
            Cond.EQ, 3, 4,
        )
        assert first_branch_taken(prog)

    def test_shift_amount_masked(self):
        prog = branch_outcome_program(
            [Imm(1, 1), Imm(2, 33), Alu(AluOp.SHL, 3, 1, 2), Imm(4, 2)],
            Cond.EQ, 3, 4,  # shift by 33 & 31 = 1 -> value 2
        )
        assert first_branch_taken(prog)


class TestMemory:
    def test_load_initial_data(self):
        b = ProgramBuilder("t")
        b.data("d", [10, 20, 30])
        e = b.block("entry")
        e.instructions = [ArrayBase(1, "d"), Load(3, 1, 2), Imm(4, 30)]
        make_leaf(b, "t", Halt())
        make_leaf(b, "f", Halt())
        e.terminator = Br(Cond.EQ, 3, 4, "t", "f")
        assert first_branch_taken(b.build())

    def test_store_then_load(self):
        b = ProgramBuilder("t")
        b.data("d", [0, 0])
        e = b.block("entry")
        e.instructions = [
            ArrayBase(1, "d"), Imm(2, 42), Store(2, 1, 1), Load(3, 1, 1),
            Imm(4, 42),
        ]
        make_leaf(b, "t", Halt())
        make_leaf(b, "f", Halt())
        e.terminator = Br(Cond.EQ, 3, 4, "t", "f")
        assert first_branch_taken(b.build())

    def test_out_of_segment_memory_defaults_zero(self):
        b = ProgramBuilder("t")
        e = b.block("entry")
        e.instructions = [Imm(1, 999), Load(3, 1), Imm(4, 0)]
        make_leaf(b, "t", Halt())
        make_leaf(b, "f", Halt())
        e.terminator = Br(Cond.EQ, 3, 4, "t", "f")
        assert first_branch_taken(b.build())


class TestConditions:
    @pytest.mark.parametrize(
        "cond,a,b,expected",
        [
            (Cond.EQ, 5, 5, True),
            (Cond.EQ, 5, 6, False),
            (Cond.NE, 5, 6, True),
            (Cond.LT, 5, 6, True),
            (Cond.LT, 6, 5, False),
            (Cond.GE, 5, 5, True),
            (Cond.LE, 5, 5, True),
            (Cond.GT, 6, 5, True),
            (Cond.GT, 5, 5, False),
        ],
    )
    def test_compare(self, cond, a, b, expected):
        prog = branch_outcome_program([Imm(1, a), Imm(2, b)], cond, 1, 2)
        assert first_branch_taken(prog) == expected


class TestControlFlow:
    def test_call_and_ret(self):
        b = ProgramBuilder("t")
        main = b.block("main")
        main.instructions = [Imm(1, 0)]
        main.terminator = Call("sub", ret_to="after")
        sub = b.block("sub")
        sub.instructions = [Imm(1, 7)]
        sub.terminator = Ret()
        after = b.block("after")
        after.instructions = [Imm(2, 7)]
        make_leaf(b, "t", Halt())
        make_leaf(b, "f", Halt())
        after.terminator = Br(Cond.EQ, 1, 2, "t", "f")
        res = Executor(b.build()).run(64)
        kinds = list(res.trace.kinds)
        assert int(BranchKind.CALL) in kinds
        assert int(BranchKind.RETURN) in kinds
        # The conditional confirms r1 == 7 after the call returned.
        cond_idx = kinds.index(int(BranchKind.CONDITIONAL))
        assert bool(res.trace.taken[cond_idx])

    def test_switch_selects_by_register_mod(self):
        b = ProgramBuilder("t")
        e = b.block("entry")
        e.instructions = [Imm(1, 5)]  # 5 % 3 == 2 -> target "c"
        e.terminator = Switch(1, ("a", "b", "c"))
        for label, val in (("a", 1), ("b", 2), ("c", 3)):
            blk = b.block(label)
            blk.instructions = [Imm(2, val)]
            blk.terminator = Halt()
        prog = b.build()
        res = Executor(prog).run(8)
        assert res.trace.kinds[0] == int(BranchKind.INDIRECT)
        assert res.trace.targets[0] == prog.block_base_ip["c"]

    def test_halt_restarts_from_entry(self):
        b = ProgramBuilder("t")
        e = b.block("entry")
        e.instructions = [Nop()]
        e.terminator = Jmp("second")
        s = b.block("second")
        s.instructions = [Nop()]
        s.terminator = Halt()
        res = Executor(b.build()).run(100)
        # The jump appears repeatedly: program restarted many times.
        assert (res.trace.kinds == int(BranchKind.UNCONDITIONAL)).sum() > 5

    def test_ret_with_empty_stack_goes_to_entry(self):
        b = ProgramBuilder("t")
        e = b.block("entry")
        e.instructions = [Nop()]
        e.terminator = Ret()
        res = Executor(b.build()).run(20)
        assert (res.trace.kinds == int(BranchKind.RETURN)).sum() > 1


class TestBudgetAndDeterminism:
    def make_loop(self):
        b = ProgramBuilder("t")
        e = b.block("entry")
        e.instructions = [Rand(1, 0, 2), Imm(2, 1)]
        make_leaf(b, "t", Jmp("entry"))
        make_leaf(b, "f", Jmp("entry"))
        e.terminator = Br(Cond.EQ, 1, 2, "t", "f")
        return b.build()

    def test_instruction_budget_respected(self):
        prog = self.make_loop()
        res = Executor(prog).run(1000)
        assert 1000 <= res.instr_count < 1000 + 16

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            Executor(self.make_loop()).run(0)

    def test_same_seed_same_trace(self):
        prog = self.make_loop()
        r1 = Executor(prog, seed=5).run(2000)
        r2 = Executor(prog, seed=5).run(2000)
        np.testing.assert_array_equal(r1.trace.taken, r2.trace.taken)

    def test_different_seed_different_outcomes(self):
        prog = self.make_loop()
        r1 = Executor(prog, seed=5).run(4000)
        r2 = Executor(prog, seed=6).run(4000)
        assert not np.array_equal(r1.trace.taken, r2.trace.taken)

    def test_instr_indices_monotone(self):
        prog = self.make_loop()
        res = Executor(prog, seed=1).run(3000)
        diffs = np.diff(res.trace.instr_indices)
        assert (diffs > 0).all()


class TestInstrumentation:
    def make_prog(self):
        b = ProgramBuilder("t")
        e = b.block("entry")
        e.instructions = [Rand(1, 0, 2), Imm(2, 1), Imm(5, 123)]
        make_leaf(b, "t", Jmp("entry"))
        make_leaf(b, "f", Jmp("entry"))
        e.terminator = Br(Cond.EQ, 1, 2, "t", "f")
        return b.build()

    def test_register_snapshots(self):
        prog = self.make_prog()
        ip = prog.terminator_ip("entry")
        ex = Executor(prog, snapshot_ips=[ip], tracked_registers=[5, 1])
        res = ex.run(500)
        snaps = res.register_snapshots[ip]
        assert len(snaps) == (res.trace.kinds == 0).sum()
        for snap in snaps:
            assert snap[0] == 123  # r5 always 123 at the branch
            assert snap[1] in (0, 1)  # r1 is the random draw

    def test_bbv_collection(self):
        prog = self.make_prog()
        ex = Executor(prog, bbv_interval=100)
        res = ex.run(1000)
        assert res.bbvs is not None
        assert res.bbvs.shape[1] == prog.num_static_blocks()
        assert res.bbvs.shape[0] >= 9
        # Each interval executed roughly interval/instr-per-round blocks.
        assert (res.bbvs.sum(axis=1) > 0).all()

    def test_bbv_interval_validation(self):
        with pytest.raises(ValueError):
            Executor(self.make_prog(), bbv_interval=0)

    def test_dataflow_events_cover_conditionals(self):
        prog = self.make_prog()
        ex = Executor(prog, track_dataflow=True)
        res = ex.run(500)
        assert len(res.cond_branch_events) == (res.trace.kinds == 0).sum()
        seqs = [e.seq for e in res.cond_branch_events]
        assert seqs == sorted(seqs)
