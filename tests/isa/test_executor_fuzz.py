"""Executor robustness fuzzing: random-but-valid programs never crash and
always produce structurally consistent traces."""

import random

import numpy as np
import pytest

from repro.core.types import BranchKind
from repro.isa.executor import Executor
from repro.isa.instructions import (
    Alu,
    AluImm,
    AluOp,
    ArrayBase,
    Br,
    Call,
    Cond,
    Halt,
    Imm,
    Jmp,
    Load,
    Rand,
    Ret,
    Store,
    Switch,
)
from repro.isa.program import ProgramBuilder


def random_program(seed: int, num_blocks: int = 12):
    """Generate a random, structurally valid program."""
    rng = random.Random(seed)
    b = ProgramBuilder(f"fuzz{seed}")
    b.data("arr", [rng.randrange(1 << 16) for _ in range(64)])
    labels = [f"bb{i}" for i in range(num_blocks)]
    blocks = [b.block(lbl) for lbl in labels]

    def rand_reg():
        return rng.randrange(0, 32)

    for i, blk in enumerate(blocks):
        for _ in range(rng.randrange(0, 6)):
            choice = rng.randrange(7)
            if choice == 0:
                blk.instructions.append(Imm(rand_reg(), rng.randrange(1 << 16)))
            elif choice == 1:
                blk.instructions.append(
                    Alu(AluOp(rng.randrange(11)), rand_reg(), rand_reg(), rand_reg())
                )
            elif choice == 2:
                blk.instructions.append(
                    AluImm(AluOp(rng.randrange(11)), rand_reg(), rand_reg(),
                           rng.randrange(1, 64))
                )
            elif choice == 3:
                blk.instructions.append(ArrayBase(rand_reg(), "arr",
                                                  rng.randrange(64)))
            elif choice == 4:
                # Base register masked into the array by a prior MOD keeps
                # addresses bounded (not required, but exercises loads).
                r = rand_reg()
                blk.instructions.append(AluImm(AluOp.MOD, r, r, 64))
                blk.instructions.append(Load(rand_reg(), r))
            elif choice == 5:
                r = rand_reg()
                blk.instructions.append(AluImm(AluOp.MOD, r, r, 64))
                blk.instructions.append(Store(rand_reg(), r))
            else:
                blk.instructions.append(Rand(rand_reg(), 0, 16))

        term_choice = rng.randrange(10)
        if term_choice < 4:
            blk.terminator = Br(
                Cond(rng.randrange(6)), rand_reg(), rand_reg(),
                rng.choice(labels), rng.choice(labels),
            )
        elif term_choice < 6:
            blk.terminator = Jmp(rng.choice(labels))
        elif term_choice == 6:
            blk.terminator = Call(rng.choice(labels), ret_to=rng.choice(labels))
        elif term_choice == 7:
            blk.terminator = Ret()
        elif term_choice == 8:
            blk.terminator = Switch(
                rand_reg(),
                tuple(rng.choice(labels) for _ in range(rng.randrange(1, 5))),
            )
        else:
            blk.terminator = Halt()
    return b.build()


@pytest.mark.parametrize("seed", range(20))
def test_random_programs_execute_consistently(seed):
    prog = random_program(seed)
    res = Executor(prog, seed=seed).run(20_000)
    trace = res.trace
    # Budget respected (within one block of overshoot).
    assert 20_000 <= res.instr_count < 20_000 + 64
    # Instruction indices strictly increase.
    if len(trace) > 1:
        assert (np.diff(trace.instr_indices) > 0).all()
    # Kinds are valid; non-conditional records are always "taken".
    assert set(np.unique(trace.kinds)).issubset(
        {int(k) for k in BranchKind}
    )
    non_cond = trace.kinds != int(BranchKind.CONDITIONAL)
    assert trace.taken[non_cond].all()
    # Every conditional IP is a real terminator IP of the program.
    term_ips = {prog.terminator_ip(b.label) for b in prog.blocks}
    assert set(trace.ips[trace.conditional_mask].tolist()).issubset(term_ips)


@pytest.mark.parametrize("seed", [3, 7, 11])
def test_random_programs_deterministic(seed):
    prog = random_program(seed)
    r1 = Executor(prog, seed=99).run(10_000)
    r2 = Executor(prog, seed=99).run(10_000)
    np.testing.assert_array_equal(r1.trace.ips, r2.trace.ips)
    np.testing.assert_array_equal(r1.trace.taken, r2.trace.taken)


@pytest.mark.parametrize("seed", [0, 5])
def test_random_programs_with_instrumentation(seed):
    prog = random_program(seed)
    res = Executor(
        prog, seed=seed, track_dataflow=True, bbv_interval=2_000
    ).run(10_000)
    assert res.cond_branch_events is not None
    assert len(res.cond_branch_events) == int(res.trace.conditional_mask.sum())
    assert res.bbvs is not None and res.bbvs.shape[1] == len(prog.blocks)
