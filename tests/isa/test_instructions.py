"""Validation tests for the instruction dataclasses."""

import pytest

from repro.isa.instructions import (
    Alu,
    AluImm,
    AluOp,
    ArrayBase,
    Br,
    Cond,
    Imm,
    Load,
    Rand,
    Store,
    Switch,
    NUM_REGISTERS,
)


class TestRegisterValidation:
    def test_imm_rejects_bad_register(self):
        with pytest.raises(ValueError):
            Imm(NUM_REGISTERS, 0)

    def test_alu_rejects_bad_sources(self):
        with pytest.raises(ValueError):
            Alu(AluOp.ADD, 0, -1, 2)

    def test_aluimm_valid(self):
        AluImm(AluOp.XOR, 1, 2, 0xFF)  # no exception

    def test_load_store(self):
        Load(1, 2, 4)
        Store(1, 2, 4)
        with pytest.raises(ValueError):
            Load(1, NUM_REGISTERS)

    def test_array_base(self):
        ArrayBase(3, "arr", 2)
        with pytest.raises(ValueError):
            ArrayBase(NUM_REGISTERS, "arr")


class TestRand:
    def test_range_validation(self):
        with pytest.raises(ValueError):
            Rand(0, 5, 5)
        Rand(0, 0, 2)


class TestTerminators:
    def test_branch_registers(self):
        Br(Cond.LT, 1, 2, "a", "b")
        with pytest.raises(ValueError):
            Br(Cond.EQ, 64, 0, "a", "b")

    def test_switch_needs_targets(self):
        with pytest.raises(ValueError):
            Switch(0, ())
        Switch(0, ("a",))
