"""Tests for program construction and layout."""

import pytest

from repro.isa.instructions import Br, Cond, Halt, Imm, Jmp, Nop
from repro.isa.program import ProgramBuilder


def tiny_builder():
    b = ProgramBuilder("t")
    e = b.block("entry")
    e.instructions = [Imm(1, 5)]
    e.terminator = Jmp("body")
    body = b.block("body")
    body.instructions = [Nop()]
    body.terminator = Halt()
    return b


class TestProgramBuilder:
    def test_entry_defaults_to_first_block(self):
        prog = tiny_builder().build()
        assert prog.entry == "entry"

    def test_set_entry(self):
        b = tiny_builder()
        b.set_entry("body")
        assert b.build().entry == "body"

    def test_set_entry_unknown(self):
        with pytest.raises(ValueError):
            tiny_builder().set_entry("missing")

    def test_duplicate_label_rejected(self):
        b = tiny_builder()
        with pytest.raises(ValueError):
            b.block("entry")

    def test_duplicate_data_rejected(self):
        b = tiny_builder()
        b.data("arr", [1, 2])
        with pytest.raises(ValueError):
            b.data("arr", [3])

    def test_fresh_labels_unique(self):
        b = ProgramBuilder("t")
        labels = {b.fresh_label() for _ in range(100)}
        assert len(labels) == 100

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            ProgramBuilder("t").build()


class TestProgram:
    def test_unknown_target_rejected(self):
        b = ProgramBuilder("t")
        e = b.block("entry")
        e.terminator = Jmp("nowhere")
        with pytest.raises(ValueError):
            b.build()

    def test_branch_targets_validated(self):
        b = ProgramBuilder("t")
        e = b.block("entry")
        e.terminator = Br(Cond.EQ, 0, 0, "entry", "missing")
        with pytest.raises(ValueError):
            b.build()

    def test_ips_stable_and_distinct(self):
        prog = tiny_builder().build()
        ip_entry = prog.terminator_ip("entry")
        ip_body = prog.terminator_ip("body")
        assert ip_entry != ip_body
        # Rebuilding the same structure assigns the same IPs.
        prog2 = tiny_builder().build()
        assert prog2.terminator_ip("entry") == ip_entry

    def test_terminator_ip_accounts_for_instructions(self):
        prog = tiny_builder().build()
        base = prog.block_base_ip["entry"]
        # One instruction before the terminator -> terminator at base + 4.
        assert prog.terminator_ip("entry") == base + 4

    def test_data_layout_concatenated(self):
        b = tiny_builder()
        b.data("a", [1, 2, 3])
        b.data("b", [7])
        prog = b.build()
        assert prog.arrays["a"].base == 0
        assert prog.arrays["a"].length == 3
        assert prog.arrays["b"].base == 3
        assert prog.initial_memory == [1, 2, 3, 7]
        assert prog.memory_size == 4

    def test_data_values_masked_to_32_bits(self):
        b = tiny_builder()
        b.data("a", [2**40 + 5])
        prog = b.build()
        assert prog.initial_memory[0] == 5

    def test_static_branch_counts(self):
        b = ProgramBuilder("t")
        e = b.block("entry")
        e.terminator = Br(Cond.EQ, 0, 0, "x", "y")
        x = b.block("x")
        x.terminator = Jmp("entry")
        y = b.block("y")
        y.terminator = Halt()
        prog = b.build()
        assert prog.num_static_conditional_branches() == 1
        assert prog.num_static_blocks() == 3
