"""Exporters: JSON snapshot round-trip and the human summary."""

import json

from repro import obs
from repro.obs.export import METRICS_SCHEMA_VERSION


def _populate():
    obs.counter("sim.branches", 1234)
    obs.gauge("sim.branches_per_sec", 5e5)
    with obs.timer("sim.trace"):
        pass
    with obs.span("fig7", storage_kib=64), obs.span(
        "lab.simulate", workload="605.mcf_s"
    ):
        pass


class TestJsonExport:
    def test_snapshot_schema(self, obs_enabled):
        _populate()
        doc = obs.snapshot()
        assert doc["schema"] == METRICS_SCHEMA_VERSION
        assert doc["counters"]["sim.branches"] == 1234
        assert doc["gauges"]["sim.branches_per_sec"] == 5e5
        assert doc["timers"]["sim.trace"]["calls"] == 1
        assert doc["spans"][0]["name"] == "fig7"
        assert doc["spans"][0]["children"][0]["attrs"] == {"workload": "605.mcf_s"}

    def test_json_round_trip(self, obs_enabled):
        _populate()
        doc = obs.snapshot(extra={"tier": "quick"})
        restored = json.loads(json.dumps(doc))
        assert restored == json.loads(json.dumps(obs.snapshot(extra={"tier": "quick"})))
        assert restored["tier"] == "quick"
        assert restored["counters"] == {"sim.branches": 1234}

    def test_write_metrics_json(self, obs_enabled, tmp_path):
        _populate()
        out = obs.write_metrics_json(tmp_path / "nested" / "m.json")
        with open(out) as f:
            doc = json.load(f)
        assert doc["schema"] == METRICS_SCHEMA_VERSION
        assert doc["counters"]["sim.branches"] == 1234


class TestSummary:
    def test_summary_mentions_metrics_and_spans(self, obs_enabled):
        _populate()
        text = obs.render_summary()
        assert "sim.branches" in text
        assert "sim.trace" in text
        assert "fig7" in text
        assert "storage_kib=64" in text
        assert "lab.simulate" in text

    def test_summary_empty_registry(self, obs_enabled):
        text = obs.render_summary()
        assert "no metrics collected" in text
