"""Prediction introspection: bit-identity across the scalar, kernel, and
parallel paths, report structure, sampling/caps, and gating."""

import json

import pytest

from repro.config import ExperimentTier
from repro.experiments.lab import PREDICTOR_FACTORIES, Lab
from repro.kernels import kernels_disabled
from repro.obs import introspect, trace
from repro.parallel.jobs import SimJob
from repro.pipeline.simulator import simulate_trace
from repro.workloads import WORKLOADS_BY_NAME, trace_workload

TEST_TIER = ExperimentTier(name="itest", spec_inputs=1, spec_slices=1, lcf_slices=1)

TINY_INSTRUCTIONS = 20_000
TINY_SLICE = 10_000

JOBS = [
    SimJob("game", 0, TINY_INSTRUCTIONS, predictor, TINY_SLICE)
    for predictor in ("bimodal", "gshare", "two-level-local")
]


def _stats_tuple(result):
    return (
        result.accuracy,
        result.mpki,
        result.instr_count,
        sorted(
            (ip, c.executions, c.mispredictions) for ip, c in result.stats.items()
        ),
        [
            sorted((ip, c.executions, c.mispredictions) for ip, c in s.items())
            for s in result.slice_stats
        ],
    )


@pytest.fixture
def introspecting():
    """Introspection forced on for one test; prior state restored."""
    saved = introspect._ENABLED
    introspect.reset_introspection()
    introspect.enable_introspection()
    yield introspect
    introspect._ENABLED = saved
    introspect.reset_introspection()


@pytest.fixture(scope="module")
def game_trace():
    return trace_workload(
        WORKLOADS_BY_NAME["game"], 0, instructions=TINY_INSTRUCTIONS
    )


@pytest.fixture(scope="module")
def tage_runs(mcf_trace):
    """TAGE-SC-L scalar runs, introspection off vs. on, plus the report.

    Pinned to the scalar loop via ``kernels_disabled()``: TAGE-SC-L
    normally dispatches through the batch-of-one replay now, and this
    fixture exists to keep the scalar introspection loop (the
    escape-hatch path) covered.
    """
    saved = introspect._ENABLED
    try:
        with kernels_disabled():
            introspect._ENABLED = False
            off = simulate_trace(
                mcf_trace.trace,
                PREDICTOR_FACTORIES["tage-sc-l-8kb"](),
                slice_instructions=100_000,
            )
            introspect._ENABLED = True
            introspect.reset_introspection()
            on = simulate_trace(
                mcf_trace.trace,
                PREDICTOR_FACTORIES["tage-sc-l-8kb"](),
                slice_instructions=100_000,
            )
            report = introspect.reports()[-1]
    finally:
        introspect._ENABLED = saved
        introspect.reset_introspection()
    return off, on, report


class TestGating:
    def test_disabled_by_default(self, monkeypatch):
        saved = introspect._ENABLED
        try:
            introspect._ENABLED = None
            monkeypatch.delenv("REPRO_INTROSPECT", raising=False)
            assert not introspect.is_enabled()
            monkeypatch.setenv("REPRO_INTROSPECT", "1")
            assert introspect.is_enabled()
            monkeypatch.setenv("REPRO_INTROSPECT", "0")
            assert not introspect.is_enabled()
        finally:
            introspect._ENABLED = saved

    def test_programmatic_override_beats_env(self, monkeypatch):
        saved = introspect._ENABLED
        try:
            monkeypatch.setenv("REPRO_INTROSPECT", "1")
            introspect.disable_introspection()
            assert not introspect.is_enabled()
        finally:
            introspect._ENABLED = saved


class TestScalarPath:
    def test_bit_identity(self, tage_runs):
        off, on, _report = tage_runs
        assert _stats_tuple(off) == _stats_tuple(on)

    def test_report_totals_match_simulation(self, tage_runs):
        _off, on, report = tage_runs
        assert report["path"] == "scalar"
        assert report["predictor"] == "tage-sc-l-8kb"
        assert report["static_branches"] == len(on.stats)
        assert report["cond_branches"] == on.stats.total_executions
        assert report["mispredictions"] == on.stats.total_mispredictions

    def test_entries_ranked_and_attributed(self, tage_runs):
        _off, _on, report = tage_runs
        branches = report["branches"]
        assert branches
        mis = [b["mispredictions"] for b in branches]
        assert mis == sorted(mis, reverse=True)
        for entry in branches:
            assert entry["accuracy"] == pytest.approx(
                1.0 - entry["mispredictions"] / entry["executions"]
            )
            for key in entry.get("provider", {}):
                assert key == "base" or key == "alt" or key.startswith("table")
            # TAGE attribution covers every prediction of the branch.
            if "provider" in entry:
                assert sum(entry["provider"].values()) == entry["executions"]
            if "slice_mispredicts" in entry:
                assert (
                    sum(entry["slice_mispredicts"].values())
                    == entry["mispredictions"]
                )
            if "mispredict_positions" in entry:
                assert len(entry["mispredict_positions"]) <= report["stream_cap"]

    def test_h2p_flags_follow_thresholds(self, tage_runs):
        from repro.config import (
            H2P_ACCURACY_THRESHOLD,
            H2P_MIN_EXECUTIONS,
            H2P_MIN_MISPREDICTIONS,
        )

        _off, _on, report = tage_runs
        for entry in report["branches"]:
            expected = (
                entry["accuracy"] < H2P_ACCURACY_THRESHOLD
                and entry["executions"] >= H2P_MIN_EXECUTIONS
                and entry["mispredictions"] >= H2P_MIN_MISPREDICTIONS
            )
            assert entry["h2p"] == expected


class TestKernelPath:
    def test_bit_identity_and_report(self, game_trace, introspecting, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "1")
        on = simulate_trace(
            game_trace.trace,
            PREDICTOR_FACTORIES["bimodal"](),
            slice_instructions=TINY_SLICE,
        )
        report = introspect.reports()[-1]
        introspect.disable_introspection()
        off = simulate_trace(
            game_trace.trace,
            PREDICTOR_FACTORIES["bimodal"](),
            slice_instructions=TINY_SLICE,
        )
        assert _stats_tuple(off) == _stats_tuple(on)
        assert report["path"] == "kernel"
        assert report["static_branches"] == len(on.stats)
        assert report["mispredictions"] == on.stats.total_mispredictions
        # The kernel path reuses the wrongness mask for position streams.
        streamed = sum(
            len(b.get("mispredict_positions", ())) for b in report["branches"]
        )
        assert streamed > 0

    def test_kernel_and_scalar_reports_agree(self, game_trace, introspecting, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "1")
        simulate_trace(game_trace.trace, PREDICTOR_FACTORIES["gshare"]())
        kernel_report = introspect.reports()[-1]
        monkeypatch.setenv("REPRO_KERNELS", "0")
        simulate_trace(game_trace.trace, PREDICTOR_FACTORIES["gshare"]())
        scalar_report = introspect.reports()[-1]
        assert kernel_report["path"] == "kernel"
        assert scalar_report["path"] == "scalar"
        for key in ("static_branches", "cond_branches", "mispredictions"):
            assert kernel_report[key] == scalar_report[key]


class TestCapsAndSampling:
    def test_stream_cap_topk_and_sampling(
        self, game_trace, introspecting, monkeypatch
    ):
        monkeypatch.setenv("REPRO_KERNELS", "0")
        monkeypatch.setenv("REPRO_INTROSPECT_STREAM", "4")
        monkeypatch.setenv("REPRO_INTROSPECT_SAMPLE", "2")
        monkeypatch.setenv("REPRO_INTROSPECT_TOPK", "3")
        simulate_trace(game_trace.trace, PREDICTOR_FACTORIES["bimodal"]())
        report = introspect.reports()[-1]
        assert report["sample"] == 2 and report["stream_cap"] == 4
        assert len(report["branches"]) <= 3
        if report["static_branches"] > 3:
            assert report["branches_truncated"] == report["static_branches"] - 3
        hot = report["branches"][0]
        assert len(hot.get("mispredict_positions", ())) <= 4
        if hot["mispredictions"] > 2 * (4 + 1):
            assert hot["positions_dropped"] > 0


class TestParallelPath:
    def test_jobs2_bit_identity_with_telemetry_on(self, obs_enabled, introspecting):
        trace.reset_trace()
        trace.enable_tracing()
        try:
            lab = Lab(tier=TEST_TIER, jobs=2)
            try:
                lab.prefetch(JOBS)
                with_telemetry = [
                    _stats_tuple(
                        lab.simulate(
                            j.workload, j.input_index, j.predictor,
                            instructions=j.instructions,
                            slice_instructions=j.slice_instructions,
                        )
                    )
                    for j in JOBS
                ]
            finally:
                lab.close()
        finally:
            trace.disable_tracing()
            trace.reset_trace()
        introspect.disable_introspection()
        serial = Lab(tier=TEST_TIER, jobs=1)
        reference = [
            _stats_tuple(
                serial.simulate(
                    j.workload, j.input_index, j.predictor,
                    instructions=j.instructions,
                    slice_instructions=j.slice_instructions,
                )
            )
            for j in JOBS
        ]
        assert with_telemetry == reference


class TestBatchedPath:
    def test_batched_and_scalar_reports_identical(
        self, game_trace, introspecting, monkeypatch
    ):
        """The multi-config replay's attribution stream (provider, alt,
        loop, SC-flip per branch) must match the scalar loop exactly."""
        from repro.pipeline.simulator import simulate_trace_batch

        presets = ("tage-sc-l-8kb", "tage-sc-l-64kb")
        monkeypatch.setenv("REPRO_KERNELS", "1")
        batched = simulate_trace_batch(
            game_trace.trace,
            [PREDICTOR_FACTORIES[p]() for p in presets],
            slice_instructions=TINY_SLICE,
        )
        batched_reports = introspect.reports()[-len(presets):]
        monkeypatch.setenv("REPRO_KERNELS", "0")
        scalar = [
            simulate_trace(
                game_trace.trace,
                PREDICTOR_FACTORIES[p](),
                slice_instructions=TINY_SLICE,
            )
            for p in presets
        ]
        scalar_reports = introspect.reports()[-len(presets):]
        for b, s, rb, rs in zip(batched, scalar, batched_reports, scalar_reports):
            assert _stats_tuple(b) == _stats_tuple(s)
            assert rb["path"] == "batched"
            assert rs["path"] == "scalar"
            db = {k: v for k, v in rb.items() if k != "path"}
            ds = {k: v for k, v in rs.items() if k != "path"}
            assert db == ds


class TestExport:
    def test_write_introspect_json(self, game_trace, introspecting, tmp_path):
        simulate_trace(game_trace.trace, PREDICTOR_FACTORIES["bimodal"]())
        out = tmp_path / "intro.json"
        introspect.write_introspect_json(out)
        doc = json.loads(out.read_text())
        assert doc["schema"] == introspect.INTROSPECT_SCHEMA_VERSION
        assert "meta" in doc and "tier" in doc["meta"]
        assert len(doc["reports"]) == 1
        assert doc["reports"][0]["predictor"] == "bimodal"
