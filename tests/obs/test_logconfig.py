"""Logger hierarchy and configuration."""

import logging

import pytest

from repro import obs
from repro.obs.logconfig import _HANDLER_FLAG, resolve_level


class TestGetLogger:
    def test_prefixes_into_hierarchy(self):
        assert obs.get_logger("lab").name == "repro.lab"
        assert obs.get_logger("repro.sim").name == "repro.sim"
        assert obs.get_logger("repro").name == "repro"
        assert obs.get_logger().name == "repro"


class TestResolveLevel:
    def test_explicit_level(self):
        assert resolve_level("debug") == logging.DEBUG
        assert resolve_level("INFO") == logging.INFO

    def test_env_level(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "info")
        assert resolve_level() == logging.INFO

    def test_default_is_warning(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        assert resolve_level() == logging.WARNING

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            resolve_level("chatty")


class TestConfigureLogging:
    @pytest.fixture(autouse=True)
    def _restore_root(self):
        root = logging.getLogger("repro")
        before = (list(root.handlers), root.level, root.propagate)
        yield
        root.handlers, root.level, root.propagate = before[0], before[1], before[2]

    def _our_handlers(self, root):
        return [h for h in root.handlers if getattr(h, _HANDLER_FLAG, False)]

    def test_sets_level_and_handler(self):
        root = obs.configure_logging("info")
        assert root.level == logging.INFO
        assert len(self._our_handlers(root)) == 1

    def test_idempotent(self):
        root = obs.configure_logging("info")
        obs.configure_logging("debug")
        assert root.level == logging.DEBUG
        assert len(self._our_handlers(root)) == 1
