"""Metrics schema v2: run-metadata header, the v1-compatible reader, and
the cross-process merge fixes (timer samples, resilience counters)."""

import json

import pytest

from repro import obs
from repro.config import ExperimentTier
from repro.experiments.lab import Lab
from repro.obs.export import (
    METRICS_SCHEMA_VERSION,
    READABLE_SCHEMA_VERSIONS,
    read_metrics_json,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.runmeta import run_metadata
from repro.parallel.jobs import SimJob
from repro.resilience import faults as fault_mod

TEST_TIER = ExperimentTier(name="mtest", spec_inputs=1, spec_slices=1, lcf_slices=1)

JOBS = [
    SimJob("game", 0, 20_000, predictor, 10_000)
    for predictor in ("bimodal", "gshare")
]


class TestRunMetadata:
    def test_metadata_fields(self):
        meta = run_metadata()
        for key in ("git_sha", "git_dirty", "date", "tier", "seed",
                    "python", "numpy", "host", "platform"):
            assert key in meta
        assert meta["tier"] == "quick"
        assert meta["date"].endswith("+00:00") or "T" in meta["date"]

    def test_fresh_overrides_stale_cache(self, monkeypatch):
        """``fresh=True`` must re-resolve HEAD instead of replaying the
        per-process cache (the BENCH_core.json stale-SHA bug)."""
        import subprocess

        from repro.obs import runmeta

        stale_sha = "0" * 40
        monkeypatch.setattr(runmeta, "_git_cache", (stale_sha, True))
        assert run_metadata()["git_sha"] == stale_sha
        fresh = run_metadata(fresh=True)
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(runmeta.__file__).rsplit("/", 1)[0],
            capture_output=True, text=True,
        ).stdout.strip()
        if not head:
            pytest.skip("not running inside a git checkout")
        assert fresh["git_sha"] == head
        # The refreshed state becomes the new cache for later callers.
        assert runmeta._git_cache[0] == head

    def test_snapshot_carries_v2_header(self, obs_enabled):
        obs.counter("sim.branches", 1)
        doc = obs.snapshot()
        assert doc["schema"] == METRICS_SCHEMA_VERSION == "repro.obs/v2"
        assert doc["meta"]["tier"] == "quick"
        assert "host" in doc["meta"]


class TestReader:
    def test_reads_v2(self, obs_enabled, tmp_path):
        obs.counter("sim.branches", 42)
        out = obs.write_metrics_json(tmp_path / "m.json")
        doc = read_metrics_json(out)
        assert doc["counters"]["sim.branches"] == 42
        assert doc["meta"]

    def test_reads_v1_with_defaulted_meta(self, tmp_path):
        v1 = {"schema": "repro.obs/v1", "counters": {"x": 1}, "gauges": {},
              "timers": {}, "spans": []}
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(v1))
        doc = read_metrics_json(path)
        assert doc["counters"] == {"x": 1}
        assert doc["meta"] == {}

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.obs/v99"}))
        with pytest.raises(ValueError, match="v99"):
            read_metrics_json(path)

    def test_current_schema_is_readable(self):
        assert METRICS_SCHEMA_VERSION in READABLE_SCHEMA_VERSIONS


class TestMergePreservesDistributions:
    def _worker(self, *durations):
        worker = MetricsRegistry(enabled=True)
        for d in durations:
            worker.observe("sim.trace", d)
        return worker.snapshot_for_merge()

    def test_samples_survive_merge(self, obs_enabled):
        obs_enabled.merge_snapshot(self._worker(1.0, 2.0, 3.0))
        t = obs_enabled.timer("sim.trace")
        assert t.count == 3
        assert sorted(t._ring) == [1.0, 2.0, 3.0]
        # Percentiles come from the merged samples, not just count/total.
        d = t.to_dict()
        assert d["p50_s"] == 2.0

    def test_min_max_and_samples_across_merges(self, obs_enabled):
        obs.observe_timer("sim.trace", 5.0)
        obs_enabled.merge_snapshot(self._worker(0.5))
        obs_enabled.merge_snapshot(self._worker(9.0, 1.0))
        t = obs_enabled.timer("sim.trace")
        assert t.count == 4
        assert t.min_s == 0.5 and t.max_s == 9.0
        assert sorted(t._ring) == [0.5, 1.0, 5.0, 9.0]

    def test_merged_registry_reexports_samples(self, obs_enabled):
        # Worker -> parent -> snapshot again: a two-hop merge must not
        # lose the distribution (the old bug collapsed it to aggregates).
        obs_enabled.merge_snapshot(self._worker(1.0, 4.0))
        again = obs_enabled.snapshot_for_merge()
        assert sorted(again["timers"]["sim.trace"]["samples"]) == [1.0, 4.0]

    def test_ring_stays_bounded_under_merge(self, obs_enabled):
        from repro.obs.registry import _TIMER_RING

        obs_enabled.merge_snapshot(self._worker(*[0.001] * (_TIMER_RING + 50)))
        t = obs_enabled.timer("sim.trace")
        assert len(t._ring) <= _TIMER_RING
        assert t.count == _TIMER_RING + 50


class TestResilienceCountersSurvive:
    @pytest.fixture
    def clean_faults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        fault_mod.uninstall()
        yield fault_mod
        fault_mod.uninstall()

    def test_serial_fallback_counters_reach_metrics_json(
        self, obs_enabled, clean_faults, tmp_path
    ):
        clean_faults.install("worker.crash")
        lab = Lab(tier=TEST_TIER, jobs=2)
        try:
            lab.prefetch(JOBS)
        finally:
            lab.close()
        doc = read_metrics_json(obs.write_metrics_json(tmp_path / "m.json"))
        counters = doc["counters"]
        assert counters["lab.parallel.serial_fallback"] == len(JOBS)
        assert counters["resilience.faults.injected"] >= 1
        # The degraded in-process jobs still publish their sim counters.
        assert counters["lab.parallel.jobs.completed"] == len(JOBS)
        assert counters["sim.branches"] > 0

    def test_resume_counters_reach_metrics_json(self, obs_enabled, tmp_path):
        cache = tmp_path / "cache"
        lab = Lab(tier=TEST_TIER, cache_dir=str(cache), jobs=1, resume=True)
        try:
            lab.simulate("game", 0, "bimodal",
                         instructions=20_000, slice_instructions=10_000)
        finally:
            lab.close()
        lab = Lab(tier=TEST_TIER, cache_dir=str(cache), jobs=1, resume=True)
        lab.close()
        doc = read_metrics_json(obs.write_metrics_json(tmp_path / "m.json"))
        counters = doc["counters"]
        assert counters["lab.resume.marked"] >= 1
        assert counters["lab.resume.loaded"] >= 1
