"""Registry semantics: counters, gauges, timers, sampling, no-op paths."""

import time

from repro import obs
from repro.obs.registry import MetricsRegistry


class TestCounters:
    def test_increment_defaults_to_one(self, obs_enabled):
        obs.counter("x")
        obs.counter("x")
        assert obs_enabled.counters_dict() == {"x": 2}

    def test_increment_amount(self, obs_enabled):
        obs.counter("sim.branches", 500)
        obs.counter("sim.branches", 250)
        assert obs_enabled.counter("sim.branches").value == 750

    def test_gauge_last_write_wins(self, obs_enabled):
        obs.gauge("rate", 1.0)
        obs.gauge("rate", 2.5)
        assert obs_enabled.gauges_dict() == {"rate": 2.5}


class TestTimers:
    def test_timer_aggregates(self, obs_enabled):
        for _ in range(3):
            with obs.timer("op"):
                time.sleep(0.001)
        t = obs_enabled.timer("op")
        assert t.calls == 3 and t.count == 3
        assert t.total_s >= 0.003
        assert 0 < t.min_s <= t.mean_s <= t.max_s
        assert t.to_dict()["p50_s"] > 0

    def test_timer_elapsed_exposed(self, obs_enabled):
        with obs.timer("op") as tc:
            time.sleep(0.001)
        assert tc.elapsed_s >= 0.001

    def test_sampling_counts_all_measures_some(self, obs_enabled):
        for _ in range(8):
            with obs.timer("hot", sample=4):
                pass
        t = obs_enabled.timer("hot")
        assert t.calls == 8
        assert t.count == 2  # one in four measured
        assert t.est_total_s == t.mean_s * 8

    def test_extra_names_share_duration(self, obs_enabled):
        with obs.timer("sim.trace", extra=("sim.predictor.tage",)):
            pass
        timers = obs_enabled.timers_dict()
        assert timers["sim.trace"]["calls"] == 1
        assert timers["sim.predictor.tage"]["calls"] == 1

    def test_observe_timer_records_external_duration(self, obs_enabled):
        obs.observe_timer("ext", 0.5)
        t = obs_enabled.timer("ext")
        assert t.count == 1 and t.total_s == 0.5


class TestDisabledFastPath:
    def test_counter_noop(self, obs_disabled):
        obs.counter("x", 10)
        assert obs_disabled.counters_dict() == {}

    def test_gauge_noop(self, obs_disabled):
        obs.gauge("g", 1.0)
        assert obs_disabled.gauges_dict() == {}

    def test_timer_noop_and_shared(self, obs_disabled):
        with obs.timer("op") as a:
            pass
        with obs.timer("op2") as b:
            pass
        assert a is b  # the shared no-op context manager
        assert a.elapsed_s == 0.0
        assert obs_disabled.timers_dict() == {}

    def test_observe_timer_noop(self, obs_disabled):
        obs.observe_timer("ext", 1.0)
        assert obs_disabled.timers_dict() == {}


class TestLifecycle:
    def test_reset_clears_metrics(self, obs_enabled):
        obs.counter("a")
        obs.gauge("b", 2)
        with obs.timer("c"):
            pass
        obs.reset()
        assert obs_enabled.counters_dict() == {}
        assert obs_enabled.gauges_dict() == {}
        assert obs_enabled.timers_dict() == {}

    def test_env_enables_registry(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert MetricsRegistry().enabled
        monkeypatch.setenv("REPRO_METRICS", "0")
        assert not MetricsRegistry().enabled
        monkeypatch.delenv("REPRO_METRICS")
        assert not MetricsRegistry().enabled

    def test_timer_ring_bounded(self, obs_enabled):
        t = obs_enabled.timer("many")
        for _i in range(1000):
            t.observe(0.001)
        assert len(t._ring) <= 256
        assert t.count == 1000


class TestCrossProcessMerge:
    def _worker_like_snapshot(self):
        worker = MetricsRegistry(enabled=True)
        worker.inc("sim.branches", 100)
        worker.set_gauge("sim.branches_per_sec", 5.0)
        worker.observe("sim.trace", 2.0)
        worker.observe("sim.trace", 4.0)
        return worker.snapshot_for_merge()

    def test_snapshot_round_trips_through_merge(self, obs_enabled):
        obs.counter("sim.branches", 7)
        obs.observe_timer("sim.trace", 1.0)
        obs_enabled.merge_snapshot(self._worker_like_snapshot())
        assert obs_enabled.counters_dict()["sim.branches"] == 107
        assert obs_enabled.gauges_dict()["sim.branches_per_sec"] == 5.0
        t = obs_enabled.timer("sim.trace")
        assert t.calls == 3 and t.count == 3
        assert t.total_s == 7.0
        assert t.min_s == 1.0 and t.max_s == 4.0

    def test_snapshot_is_json_serializable(self, obs_enabled):
        import json

        obs.counter("a")
        with obs.timer("b"):
            pass
        json.dumps(obs_enabled.snapshot_for_merge())

    def test_merge_is_noop_when_disabled(self, obs_disabled):
        obs_disabled.merge_snapshot(self._worker_like_snapshot())
        assert obs_disabled.counters_dict() == {}
        assert obs_disabled.timers_dict() == {}
