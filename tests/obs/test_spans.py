"""Span tracing: nesting, attribution, disabled behaviour."""

import time

import pytest

from repro import obs
from repro.obs.spans import current_span, reset_spans, span_trees


class TestSpans:
    def test_nesting_builds_tree(self, obs_enabled):
        with obs.span("table1", tier="quick"):
            with obs.span("lab.simulate", workload="605.mcf_s"):
                pass
            with obs.span("lab.simulate", workload="641.leela_s"):
                pass
        trees = span_trees()
        assert len(trees) == 1
        root = trees[0]
        assert root["name"] == "table1"
        assert root["attrs"] == {"tier": "quick"}
        assert [c["name"] for c in root["children"]] == ["lab.simulate"] * 2
        assert root["children"][0]["attrs"]["workload"] == "605.mcf_s"

    def test_self_time_excludes_children(self, obs_enabled):
        with obs.span("outer") as outer, obs.span("inner"):
            time.sleep(0.005)
        assert outer.duration_s >= 0.005
        assert outer.self_s <= outer.duration_s - 0.004

    def test_current_span_tracks_stack(self, obs_enabled):
        assert current_span() is None
        with obs.span("a") as a:
            assert current_span() is a
            with obs.span("b") as b:
                assert current_span() is b
            assert current_span() is a
        assert current_span() is None

    def test_sequential_roots_accumulate(self, obs_enabled):
        with obs.span("one"):
            pass
        with obs.span("two"):
            pass
        assert [t["name"] for t in span_trees()] == ["one", "two"]

    def test_reset_clears_roots(self, obs_enabled):
        with obs.span("x"):
            pass
        reset_spans()
        assert span_trees() == []

    def test_exception_still_closes_span(self, obs_enabled):
        with pytest.raises(RuntimeError), obs.span("boom"):
            raise RuntimeError
        assert current_span() is None
        assert [t["name"] for t in span_trees()] == ["boom"]


class TestDisabledSpans:
    def test_span_still_times_but_is_not_recorded(self, obs_disabled):
        with obs.span("quiet") as sp:
            time.sleep(0.001)
        assert sp.duration_s >= 0.001  # callers can still read elapsed time
        assert span_trees() == []

    def test_no_stack_linkage_when_disabled(self, obs_disabled):
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
            assert current_span() is None
        assert outer.children == []
