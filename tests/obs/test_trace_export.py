"""Timeline trace export: Chrome trace-event schema, lane separation under
``--jobs 2``, recovery/fault instants, and the disabled fast path."""

import json
from time import monotonic

import pytest

from repro import obs
from repro.config import ExperimentTier
from repro.experiments.lab import Lab
from repro.obs import trace
from repro.parallel.jobs import SimJob
from repro.resilience import faults as fault_mod

TEST_TIER = ExperimentTier(name="ttest", spec_inputs=1, spec_slices=1, lcf_slices=1)

TINY_INSTRUCTIONS = 20_000
TINY_SLICE = 10_000

#: Cheap independent jobs (kernel-bearing predictors) for pool runs.
JOBS = [
    SimJob("game", 0, TINY_INSTRUCTIONS, predictor, TINY_SLICE)
    for predictor in ("bimodal", "gshare", "two-level-local")
]


@pytest.fixture
def tracing(obs_enabled):
    """Metrics + timeline collection on, clean collector, state restored."""
    trace.reset_trace()
    trace.enable_tracing()
    yield trace.collector()
    trace.disable_tracing()
    trace.reset_trace()


@pytest.fixture
def clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
    fault_mod.uninstall()
    yield fault_mod
    fault_mod.uninstall()


def _events_by_phase(doc):
    groups = {}
    for event in doc["traceEvents"]:
        groups.setdefault(event["ph"], []).append(event)
    return groups


class TestSchema:
    def test_document_shape_and_event_fields(self, tracing, tmp_path):
        with obs.span("outer"), obs.span("inner"):
            pass
        trace.instant_event("marker", args={"k": 1})
        now = monotonic()
        trace.worker_job_event("game/bimodal", 4242, now, now + 0.001)
        out = tmp_path / "trace.json"
        obs.write_trace_json(out)
        doc = json.loads(out.read_text())

        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        # Run metadata is embedded for artifact provenance.
        for key in ("date", "tier", "python", "host"):
            assert key in doc["otherData"]

        groups = _events_by_phase(doc)
        # Complete events: the two spans + the worker job.
        assert len(groups["X"]) == 3
        for event in groups["X"]:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["ts"] >= 0 and event["dur"] >= 0
        # Instant events carry a scope.
        (instant,) = groups["i"]
        assert instant["name"] == "marker"
        assert {"ts", "pid", "tid", "s"} <= set(instant)
        assert instant["args"] == {"k": 1}
        # Metadata events name the lanes; they have no ts by design.
        assert all(m["name"] == "thread_name" for m in groups["M"])
        lane_names = {m["args"]["name"] for m in groups["M"]}
        assert {"main", "worker-4242"} <= lane_names
        # One pid throughout (lanes are tids within the parent process).
        assert len({e["pid"] for e in doc["traceEvents"]}) == 1

    def test_span_nesting_preserved_on_one_lane(self, tracing):
        with obs.span("outer"), obs.span("inner"):
            pass
        events = {e["name"]: e for e in tracing.events() if e["ph"] == "X"}
        outer, inner = events["outer"], events["inner"]
        assert outer["tid"] == inner["tid"]
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_queue_wait_dropped_on_clock_skew(self, tracing):
        trace.queue_wait_event(1, t_submit=5.0, t_start=4.0)  # start < submit
        assert [e for e in tracing.events() if e["ph"] == "X"] == []

    def test_event_cap_counts_drops(self, tracing, tmp_path):
        tracing._events = [{}] * trace.MAX_TRACE_EVENTS
        trace.instant_event("overflow")
        assert tracing.dropped_events == 1
        doc = tracing.document()
        assert doc["otherData"]["dropped_events"] == 1


class TestDisabledFastPath:
    def test_emitters_are_noops_when_off(self, obs_enabled):
        trace.disable_tracing()
        trace.reset_trace()
        trace.span_event("s", 0.0, 1.0)
        trace.worker_job_event("j", 1, 0.0, 1.0)
        trace.queue_wait_event(1, 0.0, 1.0)
        trace.serial_job_event("j", 0.0, 1.0)
        trace.instant_event("i")
        assert [e for e in trace.collector().events() if e["ph"] != "M"] == []

    def test_spans_do_not_emit_without_tracing(self, obs_enabled):
        trace.disable_tracing()
        trace.reset_trace()
        with obs.span("quiet"):
            pass
        assert [e for e in trace.collector().events() if e["ph"] == "X"] == []


class TestParallelLanes:
    def test_jobs2_run_separates_worker_lanes(self, tracing):
        lab = Lab(tier=TEST_TIER, jobs=2)
        try:
            lab.prefetch(JOBS)
        finally:
            lab.close()
        events = trace.collector().events()
        job_events = [e for e in events if e.get("cat") == "job"]
        assert len(job_events) == len(JOBS)
        waits = [e for e in events if e.get("cat") == "queue"]
        assert all(w["name"] == "queue_wait" for w in waits)
        # Worker lanes are reconstructed parent-side from WorkerReport.pid.
        lanes = {
            m["args"]["name"]
            for m in events
            if m["ph"] == "M" and m["args"]["name"].startswith("worker-")
        }
        assert 1 <= len(lanes) <= 2
        # Every job/queue event sits on a worker lane, not the main lane.
        worker_tids = {
            m["tid"]
            for m in events
            if m["ph"] == "M" and m["args"]["name"].startswith("worker-")
        }
        assert {e["tid"] for e in job_events} <= worker_tids

    def test_fault_injected_run_emits_recovery_instants(
        self, tracing, clean_faults
    ):
        # Crash every worker opportunity: retries exhaust, the scheduler
        # rebuilds the pool and finally degrades to the serial path.
        clean_faults.install("worker.crash")
        lab = Lab(tier=TEST_TIER, jobs=2)
        try:
            lab.prefetch(JOBS)
        finally:
            lab.close()
        events = trace.collector().events()
        names = [e["name"] for e in events if e["ph"] == "i"]
        assert "fault.worker.crash" in names
        assert "parallel.retry" in names
        assert "parallel.serial_fallback" in names
        # The degraded jobs land on the dedicated serial-fallback lane.
        serial_tids = {
            m["tid"]
            for m in events
            if m["ph"] == "M" and m["args"]["name"] == "serial-fallback"
        }
        assert serial_tids
        serial_jobs = [
            e
            for e in events
            if e.get("cat") == "job" and e["tid"] in serial_tids
        ]
        assert len(serial_jobs) == len(JOBS)
