"""Adaptive duration/rate formatting (runner elapsed display)."""

from repro.obs.util import format_duration, format_rate


class TestFormatDuration:
    def test_milliseconds_below_one_second(self):
        assert format_duration(0.412) == "412ms"
        assert format_duration(0.0005) == "0.5ms"
        assert format_duration(0.0) == "0.0ms"

    def test_one_decimal_below_ten_seconds(self):
        assert format_duration(3.21) == "3.2s"
        assert format_duration(1.0) == "1.0s"
        assert format_duration(9.99) == "10.0s"

    def test_whole_seconds_above_ten(self):
        assert format_duration(45.4) == "45s"

    def test_minutes_above_two(self):
        assert format_duration(150.0) == "2.5min"

    def test_negative(self):
        assert format_duration(-0.5) == "-500ms"


class TestFormatRate:
    def test_scaling(self):
        assert format_rate(2_400_000, 2.0) == "1.20M/s"
        assert format_rate(5_000, 2.0) == "2.5k/s"
        assert format_rate(10, 2.0) == "5.0/s"

    def test_zero_elapsed(self):
        assert format_rate(100, 0.0) == "?/s"

    def test_unit_suffix(self):
        assert format_rate(2_000_000, 1.0, " instr/s") == "2.00M instr/s"
