"""Tests for BBV preprocessing."""

import numpy as np
import pytest

from repro.phases.bbv import normalize_bbvs, prepare_bbvs, random_project


class TestNormalize:
    def test_rows_sum_to_one(self):
        bbvs = np.array([[2, 2, 4], [1, 0, 0]], dtype=float)
        out = normalize_bbvs(bbvs)
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_zero_row_stays_zero(self):
        out = normalize_bbvs(np.array([[0, 0], [1, 1]], dtype=float))
        np.testing.assert_allclose(out[0], [0, 0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            normalize_bbvs(np.zeros(5))


class TestRandomProject:
    def test_reduces_dimension(self):
        v = np.random.default_rng(0).random((10, 100))
        out = random_project(v, dimensions=15)
        assert out.shape == (10, 15)

    def test_small_input_passthrough(self):
        v = np.random.default_rng(0).random((10, 8))
        out = random_project(v, dimensions=15)
        assert out.shape == (10, 8)

    def test_deterministic(self):
        v = np.random.default_rng(0).random((5, 50))
        np.testing.assert_array_equal(
            random_project(v, seed=1), random_project(v, seed=1)
        )

    def test_preserves_separation(self):
        # Two well-separated clusters stay separated after projection.
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.01, (20, 200))
        b = rng.normal(1, 0.01, (20, 200))
        proj = random_project(np.vstack([a, b]), dimensions=10)
        da = np.linalg.norm(proj[:20] - proj[:20].mean(axis=0), axis=1).mean()
        cross = np.linalg.norm(proj[:20].mean(axis=0) - proj[20:].mean(axis=0))
        assert cross > 5 * da

    def test_validation(self):
        with pytest.raises(ValueError):
            random_project(np.zeros((2, 10)), dimensions=0)


class TestPrepare:
    def test_pipeline(self):
        bbvs = np.random.default_rng(0).integers(0, 100, (8, 300))
        out = prepare_bbvs(bbvs, dimensions=15)
        assert out.shape == (8, 15)
