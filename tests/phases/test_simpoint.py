"""Tests for SimPoint-style clustering."""

import numpy as np
import pytest

from repro.phases.simpoint import cluster_phases


def clustered_data(k, per_cluster=12, dim=5, spread=0.02, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-5, 5, (k, dim))
    rows = []
    labels = []
    for j in range(k):
        rows.append(centers[j] + rng.normal(0, spread, (per_cluster, dim)))
        labels.extend([j] * per_cluster)
    return np.vstack(rows), np.array(labels)


class TestClusterPhases:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_recovers_well_separated_clusters(self, k):
        data, truth = clustered_data(k)
        result = cluster_phases(data, max_k=8)
        assert result.num_phases == k
        # Cluster assignments must be consistent with the ground truth
        # (same-truth rows share a label).
        for j in range(k):
            member_labels = set(result.labels[truth == j].tolist())
            assert len(member_labels) == 1

    def test_single_cluster(self):
        data, _ = clustered_data(1, per_cluster=20)
        result = cluster_phases(data, max_k=6)
        assert result.num_phases == 1

    def test_simpoints_one_per_phase(self):
        data, _ = clustered_data(3)
        result = cluster_phases(data, max_k=6)
        assert len(result.simpoints) == result.num_phases
        # Each SimPoint belongs to its phase.
        for j, sp in enumerate(result.simpoints):
            assert 0 <= sp < len(data)

    def test_phase_sizes_sum(self):
        data, _ = clustered_data(4)
        result = cluster_phases(data, max_k=8)
        assert result.phase_sizes().sum() == len(data)

    def test_max_k_clamped_to_data(self):
        data = np.random.default_rng(0).random((3, 4))
        result = cluster_phases(data, max_k=10)
        assert result.num_phases <= 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cluster_phases(np.zeros((0, 3)))

    def test_deterministic(self):
        data, _ = clustered_data(3)
        a = cluster_phases(data, max_k=6)
        b = cluster_phases(data, max_k=6)
        np.testing.assert_array_equal(a.labels, b.labels)
