"""Edge cases across the trace/simulation seam."""


from repro.core.metrics import BranchStats
from repro.core.types import BranchKind, BranchTrace
from repro.pipeline.simulator import simulate_trace
from repro.predictors.simple import AlwaysTaken, Bimodal


class TestEmptyAndDegenerateTraces:
    def test_empty_trace_simulates(self):
        trace = BranchTrace(ips=[], taken=[], instr_count=100)
        res = simulate_trace(trace, Bimodal())
        assert res.stats.total_executions == 0
        assert res.accuracy == 1.0

    def test_empty_trace_with_slices(self):
        trace = BranchTrace(ips=[], taken=[], instr_count=100)
        res = simulate_trace(trace, Bimodal(), slice_instructions=50)
        assert len(res.slice_stats) >= 1
        assert all(s.total_executions == 0 for s in res.slice_stats)

    def test_all_non_conditional_trace(self):
        trace = BranchTrace(
            ips=[1, 2, 3], taken=[True] * 3,
            kinds=[int(BranchKind.CALL)] * 3,
        )
        res = simulate_trace(trace, Bimodal())
        assert res.stats.total_executions == 0

    def test_single_branch_trace(self):
        trace = BranchTrace(ips=[0x40], taken=[True])
        res = simulate_trace(trace, AlwaysTaken())
        assert res.stats.total_executions == 1
        assert res.mispredictions == 0

    def test_warmup_exceeding_trace_scores_nothing(self):
        trace = BranchTrace(ips=[0x40] * 5, taken=[True] * 5)
        res = simulate_trace(trace, AlwaysTaken(), warmup_branches=100)
        assert res.stats.total_executions == 0

    def test_empty_slices_of_empty_stats(self):
        s = BranchStats()
        assert len(s) == 0
        assert s.mean_executions_per_branch() == 0.0
        assert s.mean_accuracy_per_branch() == 1.0


class TestSliceBoundaryPrecision:
    def test_branch_exactly_on_boundary_goes_to_next_slice(self):
        # Branch at instruction index 100 with slice length 100 belongs to
        # slice 1 (instr_start=100), not slice 0.
        trace = BranchTrace(
            ips=[0x40, 0x40], taken=[True, True],
            instr_indices=[99, 100], instr_count=200,
        )
        res = simulate_trace(trace, AlwaysTaken(), slice_instructions=100)
        assert res.slice_stats[0].total_executions == 1
        assert res.slice_stats[1].total_executions == 1

    def test_multiple_empty_slices_skipped_correctly(self):
        # A long gap of non-branch instructions spans several slices.
        trace = BranchTrace(
            ips=[0x40, 0x40], taken=[True, True],
            instr_indices=[10, 450], instr_count=500,
        )
        res = simulate_trace(trace, AlwaysTaken(), slice_instructions=100)
        assert len(res.slice_stats) == 5
        assert res.slice_stats[0].total_executions == 1
        assert res.slice_stats[4].total_executions == 1
        assert all(
            s.total_executions == 0 for s in res.slice_stats[1:4]
        )
