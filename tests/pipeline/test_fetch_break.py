"""Tests for the fetch-break (taken-branch-density) IPC model."""

import pytest

from repro.core.types import BranchKind, BranchTrace
from repro.pipeline.config import SKYLAKE_LIKE
from repro.pipeline.model import FetchBreakModel, IntervalIpcModel


def trace_with_taken_density(n_branches, gap, taken_every):
    """Branches every ``gap`` instructions; every ``taken_every``-th taken."""
    ips = [0x40 + 16 * (i % 7) for i in range(n_branches)]
    taken = [i % taken_every == 0 for i in range(n_branches)]
    instr = [i * gap for i in range(n_branches)]
    return BranchTrace(
        ips=ips, taken=taken, instr_indices=instr,
        instr_count=n_branches * gap,
    )


class TestFetchBreakModel:
    def test_taken_dense_code_is_slower(self):
        model = FetchBreakModel(SKYLAKE_LIKE)
        dense = trace_with_taken_density(1000, gap=5, taken_every=1)
        sparse = trace_with_taken_density(1000, gap=5, taken_every=10)
        assert model.cycles(dense, 0) > model.cycles(sparse, 0)

    def test_misprediction_penalty_applied(self):
        model = FetchBreakModel(SKYLAKE_LIKE)
        t = trace_with_taken_density(100, gap=5, taken_every=4)
        assert model.cycles(t, 10) == pytest.approx(
            model.cycles(t, 0) + 10 * SKYLAKE_LIKE.flush_penalty
        )

    def test_non_conditional_branches_break_fetch(self):
        base = trace_with_taken_density(100, gap=5, taken_every=1000)
        redirecting = BranchTrace(
            ips=base.ips, taken=base.taken,
            kinds=[int(BranchKind.CALL)] * len(base.ips),
            instr_indices=base.instr_indices,
            instr_count=base.instr_count,
        )
        model = FetchBreakModel(SKYLAKE_LIKE)
        assert model.cycles(redirecting, 0) > model.cycles(base, 0)

    def test_wider_pipeline_fewer_cycles(self):
        t = trace_with_taken_density(500, gap=8, taken_every=3)
        narrow = FetchBreakModel(SKYLAKE_LIKE).cycles(t, 0)
        wide = FetchBreakModel(SKYLAKE_LIKE.scaled(4)).cycles(t, 0)
        assert wide < narrow

    def test_agrees_with_interval_model_order_of_magnitude(self):
        t = trace_with_taken_density(1000, gap=6, taken_every=3)
        fb = FetchBreakModel(SKYLAKE_LIKE).evaluate(t, 50)
        iv = IntervalIpcModel(SKYLAKE_LIKE).evaluate(t.instr_count, 50)
        assert 0.3 < fb.ipc / iv.ipc < 3.0

    def test_validation(self):
        t = trace_with_taken_density(10, gap=5, taken_every=2)
        model = FetchBreakModel(SKYLAKE_LIKE)
        with pytest.raises(ValueError):
            model.cycles(t, -1)
