"""Vectorized kernel path: scan primitives and scalar/kernel equivalence.

The contract under test (see :mod:`repro.kernels`) is *bit-identity*: for
every kernel-bearing predictor, the vectorized path must reproduce the
scalar loop's outputs exactly — aggregate and per-slice stats including
dict insertion order, mispredict positions, warmup semantics, and the
predictor's own final table/history state.
"""

import random

import numpy as np
import pytest

from repro.core.types import BranchTrace
from repro.kernels import kernels_enabled
from repro.kernels.batched import batchable
from repro.kernels.scan import (
    final_history,
    first_appearance_counts,
    local_history,
    packed_history,
    saturating_counter_scan,
)
from repro.pipeline.simulator import simulate_trace, simulate_trace_batch
from repro.predictors.base import counter_update
from repro.predictors.gehl import OGehl
from repro.predictors.oracle import Perfect, PerfectFilter
from repro.predictors.perceptron import PathPerceptron, Perceptron
from repro.predictors.simple import (
    AlwaysTaken,
    Bimodal,
    GShare,
    NeverTaken,
    TwoLevelLocal,
)
from repro.predictors.tage import Tage
from repro.predictors.tagescl import STORAGE_PRESETS_KIB, TageScL, make_tage_sc_l
from repro.workloads import WORKLOADS_BY_NAME, trace_workload

SPECINT = [name for name, spec in WORKLOADS_BY_NAME.items() if spec.category == "specint"]


# ---------------------------------------------------------------------------
# scan primitives vs. direct scalar replay


def scalar_counter_replay(groups, taken, lo, hi, init):
    """Reference implementation: per-group counter_update loop."""
    if isinstance(init, np.ndarray):
        table = {}
        for g, v in zip(groups, init):
            table.setdefault(int(g), int(v))
    else:
        table = {int(g): int(init) for g in groups}
    before = []
    for g, t in zip(groups, taken):
        g = int(g)
        before.append(table[g])
        table[g] = counter_update(table[g], bool(t), lo, hi)
    return np.asarray(before, dtype=np.int64), table


class TestSaturatingCounterScan:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scalar_replay_randomized(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(1, 400)
        k = rng.randrange(1, 12)
        lo, hi = -rng.randrange(1, 4), rng.randrange(0, 4)
        groups = np.array([rng.randrange(k) for _ in range(n)], dtype=np.int64)
        taken = np.array([rng.random() < 0.6 for _ in range(n)], dtype=bool)
        if rng.random() < 0.5:
            table = np.array([rng.randrange(lo, hi + 1) for _ in range(k)], dtype=np.int64)
            init = table[groups]
        else:
            init = rng.randrange(lo, hi + 1)
        scan = saturating_counter_scan(groups, taken, lo, hi, init)
        want_before, want_table = scalar_counter_replay(groups, taken, lo, hi, init)
        assert np.array_equal(scan.states_before, want_before)
        got_table = dict(
            zip(scan.final_groups.tolist(), scan.final_states.tolist())
        )
        assert got_table == want_table

    def test_empty_stream(self):
        scan = saturating_counter_scan(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), -2, 1, 0
        )
        assert len(scan.states_before) == 0
        assert len(scan.final_groups) == 0

    def test_single_long_run_saturates(self):
        n = 100
        groups = np.zeros(n, dtype=np.int64)
        taken = np.ones(n, dtype=bool)
        scan = saturating_counter_scan(groups, taken, -2, 1, -2)
        # -2 -> -1 -> 0 -> 1 -> 1 -> ...
        assert scan.states_before[:4].tolist() == [-2, -1, 0, 1]
        assert scan.states_before[4:].tolist() == [1] * (n - 4)
        assert scan.final_states.tolist() == [1]


class TestHistoryHelpers:
    @pytest.mark.parametrize("seed,bits,init", [(0, 4, 0), (1, 8, 0b1011), (2, 3, 0b111)])
    def test_packed_history_matches_shift_register(self, seed, bits, init):
        rng = random.Random(seed)
        taken = np.array([rng.random() < 0.5 for _ in range(50)], dtype=bool)
        mask = (1 << bits) - 1
        h = init & mask
        for i, t in enumerate(taken):
            assert packed_history(taken, bits, init=init)[i] == h
            h = ((h << 1) | int(t)) & mask
        assert final_history(taken, bits, init=init) == h

    @pytest.mark.parametrize("seed", range(4))
    def test_local_history_matches_per_group_registers(self, seed):
        rng = random.Random(100 + seed)
        n, k, bits = 120, 5, 4
        groups = np.array([rng.randrange(k) for _ in range(n)], dtype=np.int64)
        taken = np.array([rng.random() < 0.5 for _ in range(n)], dtype=bool)
        init_table = np.array([rng.randrange(1 << bits) for _ in range(k)], dtype=np.int64)
        lh = local_history(groups, taken, bits, init_table)
        mask = (1 << bits) - 1
        regs = {g: int(init_table[g]) for g in range(k)}
        for i in range(n):
            g = int(groups[i])
            assert int(lh.history[i]) == regs[g], f"position {i}"
            regs[g] = ((regs[g] << 1) | int(taken[i])) & mask
        final = dict(zip(lh.final_groups.tolist(), lh.final_registers.tolist()))
        assert final == {g: regs[g] for g in set(groups.tolist())}


class TestFirstAppearanceCounts:
    def test_orders_by_first_occurrence(self):
        keys = np.array([7, 3, 7, 9, 3, 3], dtype=np.int64)
        wrong = np.array([True, False, False, True, True, False])
        uniq, execs, flagged, order = first_appearance_counts(keys, wrong)
        ordered = [int(uniq[u]) for u in order]
        assert ordered == [7, 3, 9]
        by_key = {int(uniq[u]): (int(execs[u]), int(flagged[u])) for u in order}
        assert by_key == {7: (2, 1), 3: (3, 1), 9: (1, 1)}


# ---------------------------------------------------------------------------
# end-to-end equivalence: scalar loop vs. vectorized path


def kernel_predictors(trace):
    """Fresh instances of every kernel-bearing predictor."""
    perfect_ips = set(trace.static_branch_ips().tolist()[::2])
    return [
        AlwaysTaken(),
        NeverTaken(),
        Bimodal(),
        GShare(),
        TwoLevelLocal(),
        Perfect(),
        PerfectFilter(GShare(), perfect_ips=perfect_ips),
        Perceptron(),
        PathPerceptron(),
        OGehl(),
    ]


_STATE_ATTRS = (
    # tables / registers
    "_table", "_history", "_l1", "_l2", "_weights", "_tables",
    "_dir_history", "_path",
    # adaptive thresholds and per-prediction scratch (stale-value
    # semantics are part of the bit-identity contract)
    "threshold", "_tc", "_last_sum", "_last_index", "_last_indices",
    "_last_rows",
)


def predictor_state(p):
    state = {
        attr: getattr(p, attr) for attr in _STATE_ATTRS if hasattr(p, attr)
    }
    if getattr(p, "inner", None) is not None:
        state["inner"] = predictor_state(p.inner)
    return state


def full_state(obj, _depth=0):
    """Normalize an object graph for exact state comparison."""
    if isinstance(obj, (bool, int, float, str, bytes, type(None))):
        return obj
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (list, tuple)):
        return [full_state(x, _depth + 1) for x in obj]
    if isinstance(obj, dict):
        # Key order is part of the contract (insertion-ordered tables).
        return [(k, full_state(v, _depth + 1)) for k, v in obj.items()]
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    if _depth > 8:  # defensive: predictor graphs are shallow
        return repr(obj)
    if hasattr(obj, "__dict__"):
        return {k: full_state(v, _depth + 1) for k, v in vars(obj).items()}
    slots = [
        s for klass in type(obj).__mro__ for s in getattr(klass, "__slots__", ())
    ]
    if slots:
        return {
            s: full_state(getattr(obj, s), _depth + 1)
            for s in slots
            if hasattr(obj, s)
        }
    return repr(obj)


def assert_identical(scalar, vectorized):
    assert scalar.stats._counts == vectorized.stats._counts
    assert list(scalar.stats._counts) == list(vectorized.stats._counts)
    s_slices = scalar.slice_stats
    v_slices = vectorized.slice_stats
    assert (s_slices is None) == (v_slices is None)
    if s_slices is not None:
        assert len(s_slices) == len(v_slices)
        for s, v in zip(s_slices, v_slices):
            assert s._counts == v._counts
            assert list(s._counts) == list(v._counts)
    s_pos = scalar.mispredict_positions
    v_pos = vectorized.mispredict_positions
    assert (s_pos is None) == (v_pos is None)
    if s_pos is not None:
        assert np.array_equal(np.asarray(s_pos), np.asarray(v_pos))


@pytest.fixture(scope="module")
def small_traces():
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = trace_workload(
                WORKLOADS_BY_NAME[name], 0, instructions=30_000
            ).trace
        return cache[name]

    return get


class TestScalarKernelEquivalence:
    @pytest.mark.parametrize("workload", SPECINT)
    def test_all_predictors_bit_identical(self, workload, small_traces, monkeypatch):
        trace = small_traces(workload)
        scalars = kernel_predictors(trace)
        vectors = kernel_predictors(trace)
        for ps, pv in zip(scalars, vectors):
            monkeypatch.setenv("REPRO_KERNELS", "0")
            rs = simulate_trace(
                trace,
                ps,
                slice_instructions=10_000,
                record_mispredict_positions=True,
            )
            monkeypatch.setenv("REPRO_KERNELS", "1")
            rv = simulate_trace(
                trace,
                pv,
                slice_instructions=10_000,
                record_mispredict_positions=True,
            )
            assert_identical(rs, rv)
            assert predictor_state(ps) == predictor_state(pv), ps.name

    @pytest.mark.parametrize(
        "factory", [Bimodal, Perceptron, PathPerceptron, OGehl]
    )
    @pytest.mark.parametrize(
        "warmup,slices",
        [(0, None), (0, 7_777), (500, 10_000), (3, 10_000), (10**6, 10_000)],
    )
    def test_warmup_slice_combinations(
        self, factory, warmup, slices, small_traces, monkeypatch
    ):
        trace = small_traces("605.mcf_s")
        monkeypatch.setenv("REPRO_KERNELS", "0")
        ps = factory()
        rs = simulate_trace(
            trace,
            ps,
            slice_instructions=slices,
            record_mispredict_positions=True,
            warmup_branches=warmup,
        )
        monkeypatch.setenv("REPRO_KERNELS", "1")
        pv = factory()
        rv = simulate_trace(
            trace,
            pv,
            slice_instructions=slices,
            record_mispredict_positions=True,
            warmup_branches=warmup,
        )
        assert_identical(rs, rv)
        assert full_state(ps) == full_state(pv)

    def test_cross_call_state_carries_over(self, small_traces, monkeypatch):
        # Simulating twice without reset must train through, identically.
        trace = small_traces("641.leela_s")
        monkeypatch.setenv("REPRO_KERNELS", "0")
        ps = GShare()
        simulate_trace(trace, ps)
        rs = simulate_trace(trace, ps)
        monkeypatch.setenv("REPRO_KERNELS", "1")
        pv = GShare()
        simulate_trace(trace, pv)
        rv = simulate_trace(trace, pv)
        assert_identical(rs, rv)
        assert predictor_state(ps) == predictor_state(pv)


class TestDispatch:
    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "0")
        assert not kernels_enabled()
        monkeypatch.setenv("REPRO_KERNELS", "off")
        assert not kernels_enabled()
        monkeypatch.delenv("REPRO_KERNELS")
        assert kernels_enabled()

    def test_scalar_path_counts_fallback(self, monkeypatch, obs_enabled):
        trace = BranchTrace(ips=[0x40] * 10, taken=[True] * 10)
        monkeypatch.setenv("REPRO_KERNELS", "0")
        simulate_trace(trace, AlwaysTaken())
        counters = obs_enabled.counters_dict()
        assert counters["kernels.fallback_scalar"] == 10
        assert "kernels.branches" not in counters

    def test_kernel_path_counts_branches(self, monkeypatch, obs_enabled):
        trace = BranchTrace(ips=[0x40] * 10, taken=[True] * 10)
        monkeypatch.setenv("REPRO_KERNELS", "1")
        simulate_trace(trace, AlwaysTaken())
        counters = obs_enabled.counters_dict()
        assert counters["kernels.branches"] == 10
        assert "kernels.fallback_scalar" not in counters

    def test_tage_has_no_kernel(self):
        assert make_tage_sc_l(8).vectorized_kernel() is None

    def test_subclasses_fall_back_to_scalar(self):
        class Tweaked(Bimodal):
            def predict(self, ip):
                return not super().predict(ip)

        assert Tweaked().vectorized_kernel() is None
        assert GShare().vectorized_kernel() is not None

    def test_perfect_filter_with_predicate_falls_back(self):
        p = PerfectFilter(GShare(), predicate=lambda ip: ip % 2 == 0)
        assert p.vectorized_kernel() is None

    def test_fallback_counter_has_per_predictor_child(self, monkeypatch, obs_enabled):
        trace = BranchTrace(ips=[0x40] * 10, taken=[True] * 10)
        monkeypatch.setenv("REPRO_KERNELS", "0")
        simulate_trace(trace, AlwaysTaken())
        simulate_trace(trace, make_tage_sc_l(8))
        counters = obs_enabled.counters_dict()
        assert counters["kernels.fallback_scalar"] == 20
        assert counters["kernels.fallback_scalar.always-taken"] == 10
        assert counters["kernels.fallback_scalar.tage-sc-l-8kb"] == 10


# ---------------------------------------------------------------------------
# batched multi-config TAGE-SC-L replay


BATCH_PRESETS = (8, 64)


class TestBatchedTageScL:
    def _run_pair(self, trace, monkeypatch, **kwargs):
        """Scalar loop per preset vs. one batched replay over all presets."""
        monkeypatch.setenv("REPRO_KERNELS", "0")
        scalars = [make_tage_sc_l(k) for k in BATCH_PRESETS]
        rs = [
            simulate_trace(trace, p, **kwargs)
            for p in scalars
        ]
        monkeypatch.setenv("REPRO_KERNELS", "1")
        vectors = [make_tage_sc_l(k) for k in BATCH_PRESETS]
        rv = simulate_trace_batch(trace, vectors, **kwargs)
        return scalars, rs, vectors, rv

    def test_batchable_guards(self):
        assert batchable(make_tage_sc_l(8))

        class Tweaked(TageScL):
            pass

        assert not batchable(Tweaked())

    def test_stats_positions_and_full_state_identical(
        self, small_traces, monkeypatch
    ):
        trace = small_traces("605.mcf_s")
        scalars, rs, vectors, rv = self._run_pair(
            trace,
            monkeypatch,
            slice_instructions=10_000,
            record_mispredict_positions=True,
        )
        for ps, s, pv, v in zip(scalars, rs, vectors, rv):
            assert_identical(s, v)
            assert full_state(ps) == full_state(pv), ps.name
            # Insertion order of the composite's local-history table is
            # part of the contract (full_state already encodes it; this
            # makes a failure legible).
            assert list(ps._local) == list(pv._local)

    def test_warmup_and_slice_semantics_match(self, small_traces, monkeypatch):
        trace = small_traces("605.mcf_s")
        _, rs, _, rv = self._run_pair(
            trace,
            monkeypatch,
            slice_instructions=7_777,
            record_mispredict_positions=True,
            warmup_branches=500,
        )
        for s, v in zip(rs, rv):
            assert_identical(s, v)

    def test_batch_counts_batched_branches(self, small_traces, monkeypatch, obs_enabled):
        trace = small_traces("605.mcf_s")
        monkeypatch.setenv("REPRO_KERNELS", "1")
        simulate_trace_batch(trace, [make_tage_sc_l(k) for k in BATCH_PRESETS])
        counters = obs_enabled.counters_dict()
        cond = int(len(trace.conditional_columns()[0]))
        assert counters["kernels.batched"] == cond * len(BATCH_PRESETS)
        assert counters["kernels.branches"] == cond * len(BATCH_PRESETS)

    def test_disabled_kernels_fall_back_to_scalar_members(
        self, small_traces, monkeypatch, obs_enabled
    ):
        trace = small_traces("605.mcf_s")
        monkeypatch.setenv("REPRO_KERNELS", "0")
        scalars = [make_tage_sc_l(k) for k in BATCH_PRESETS]
        rs = [simulate_trace(trace, p) for p in scalars]
        batch_preds = [make_tage_sc_l(k) for k in BATCH_PRESETS]
        rv = simulate_trace_batch(trace, batch_preds)
        for s, v in zip(rs, rv):
            assert_identical(s, v)
        counters = obs_enabled.counters_dict()
        assert "kernels.batched" not in counters
        assert counters["kernels.fallback_scalar.tage-sc-l-8kb"] > 0

    def test_non_batchable_member_falls_back(self, small_traces, monkeypatch):
        trace = small_traces("605.mcf_s")

        class Tweaked(TageScL):
            pass

        monkeypatch.setenv("REPRO_KERNELS", "0")
        want = simulate_trace(trace, TageScL())
        monkeypatch.setenv("REPRO_KERNELS", "1")
        got = simulate_trace_batch(trace, [Tweaked()])
        assert len(got) == 1
        assert_identical(want, got[0])

    def test_empty_batch(self):
        assert simulate_trace_batch(BranchTrace(ips=[], taken=[]), []) == []


#: warmup × slice configurations for the batch-of-one equivalence sweep.
BATCH_OF_ONE_CONFIGS = [
    {},
    {"slice_instructions": 10_000},
    {"warmup_branches": 500},
    {
        "slice_instructions": 7_777,
        "warmup_branches": 1_000,
        "record_mispredict_positions": True,
    },
]


class TestBatchOfOne:
    """``simulate_trace`` routes batchable predictors through the batched
    replay as a batch of one — stats, slices, positions, final predictor
    state, introspection, and counters must all match the scalar loop."""

    def _pair(self, trace, factory, monkeypatch, **kwargs):
        monkeypatch.setenv("REPRO_KERNELS", "0")
        ps = factory()
        rs = simulate_trace(trace, ps, **kwargs)
        monkeypatch.setenv("REPRO_KERNELS", "1")
        pv = factory()
        rv = simulate_trace(trace, pv, **kwargs)
        return ps, rs, pv, rv

    def test_plain_tage_is_batchable(self):
        assert batchable(Tage())

        class Tweaked(Tage):
            pass

        assert not batchable(Tweaked())

    @pytest.mark.parametrize("kib", STORAGE_PRESETS_KIB)
    def test_tagescl_every_preset_bit_identical(
        self, small_traces, monkeypatch, kib
    ):
        trace = small_traces("605.mcf_s")
        ps, rs, pv, rv = self._pair(
            trace,
            lambda: make_tage_sc_l(kib),
            monkeypatch,
            slice_instructions=10_000,
            record_mispredict_positions=True,
        )
        assert_identical(rs, rv)
        assert full_state(ps) == full_state(pv)

    @pytest.mark.parametrize("config", BATCH_OF_ONE_CONFIGS)
    def test_tagescl_warmup_slice_grid(self, small_traces, monkeypatch, config):
        trace = small_traces("641.leela_s")
        ps, rs, pv, rv = self._pair(
            trace, lambda: make_tage_sc_l(8), monkeypatch, **config
        )
        assert_identical(rs, rv)
        assert full_state(ps) == full_state(pv)

    @pytest.mark.parametrize("config", BATCH_OF_ONE_CONFIGS)
    def test_plain_tage_warmup_slice_grid(self, small_traces, monkeypatch, config):
        trace = small_traces("605.mcf_s")
        ps, rs, pv, rv = self._pair(trace, Tage, monkeypatch, **config)
        assert_identical(rs, rv)
        assert full_state(ps) == full_state(pv)

    def test_batched_path_counters(self, small_traces, monkeypatch, obs_enabled):
        trace = small_traces("605.mcf_s")
        monkeypatch.setenv("REPRO_KERNELS", "1")
        simulate_trace(trace, make_tage_sc_l(8))
        counters = obs_enabled.counters_dict()
        cond = int(len(trace.conditional_columns()[0]))
        assert counters["kernels.batched"] == cond
        assert counters["kernels.branches"] == cond
        assert not any(k.startswith("kernels.fallback_scalar") for k in counters)

    def test_escape_hatch_counts_scalar_fallback(
        self, small_traces, monkeypatch, obs_enabled
    ):
        trace = small_traces("605.mcf_s")
        monkeypatch.setenv("REPRO_KERNELS", "0")
        simulate_trace(trace, make_tage_sc_l(8))
        counters = obs_enabled.counters_dict()
        assert "kernels.batched" not in counters
        assert counters["kernels.fallback_scalar.tage-sc-l-8kb"] > 0

    def test_introspection_report_rides_batched_path(
        self, small_traces, monkeypatch
    ):
        from repro.obs import introspect

        trace = small_traces("605.mcf_s")
        saved = introspect._ENABLED
        introspect.reset_introspection()
        introspect.enable_introspection()
        try:
            monkeypatch.setenv("REPRO_KERNELS", "1")
            simulate_trace(trace, make_tage_sc_l(8))
            batched_report = introspect.reports()[-1]
            monkeypatch.setenv("REPRO_KERNELS", "0")
            simulate_trace(trace, make_tage_sc_l(8))
            scalar_report = introspect.reports()[-1]
        finally:
            introspect._ENABLED = saved
            introspect.reset_introspection()
        assert batched_report["path"] == "batched"
        assert scalar_report["path"] == "scalar"
        db = {k: v for k, v in batched_report.items() if k != "path"}
        ds = {k: v for k, v in scalar_report.items() if k != "path"}
        assert db == ds

    def test_empty_trace_batch_of_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "1")
        result = simulate_trace(BranchTrace(ips=[], taken=[]), make_tage_sc_l(8))
        assert result.stats.total_executions == 0
