"""Tests for the pipeline configuration and IPC models."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.config import SCALING_FACTORS, SKYLAKE_LIKE, PipelineConfig
from repro.pipeline.model import (
    EventFrontEndModel,
    IntervalIpcModel,
    ipc_gap_closed,
    relative_ipc,
)


class TestPipelineConfig:
    def test_scaled_changes_only_scale(self):
        c = SKYLAKE_LIKE.scaled(4)
        assert c.scale == 4
        assert c.base_width == SKYLAKE_LIKE.base_width

    def test_width_and_rob_scale(self):
        c = SKYLAKE_LIKE.scaled(8)
        assert c.width == 8 * SKYLAKE_LIKE.base_width
        assert c.rob == 8 * SKYLAKE_LIKE.base_rob

    def test_issue_cpi_scales_inverse(self):
        assert SKYLAKE_LIKE.scaled(2).issue_cpi == pytest.approx(
            SKYLAKE_LIKE.issue_cpi / 2
        )

    def test_mem_cpi_scales_sublinearly(self):
        one = SKYLAKE_LIKE.scaled(1).mem_cpi
        four = SKYLAKE_LIKE.scaled(4).mem_cpi
        assert four < one
        assert four > one / 4  # sub-linear improvement

    def test_serial_cpi_scale_invariant(self):
        assert SKYLAKE_LIKE.scaled(32).serial_cpi == SKYLAKE_LIKE.serial_cpi

    def test_flush_penalty_grows_with_scale(self):
        assert SKYLAKE_LIKE.scaled(32).flush_penalty > SKYLAKE_LIKE.flush_penalty

    def test_base_cpi_decreases_with_scale(self):
        cpis = [SKYLAKE_LIKE.scaled(s).base_cpi for s in SCALING_FACTORS]
        assert cpis == sorted(cpis, reverse=True)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            PipelineConfig(scale=0)


class TestIntervalModel:
    def test_perfect_faster_than_imperfect(self):
        m = IntervalIpcModel(SKYLAKE_LIKE)
        assert m.ipc(10_000, 0) > m.ipc(10_000, 100)

    def test_cycles_linear_in_mispredictions(self):
        m = IntervalIpcModel(SKYLAKE_LIKE)
        c0 = m.cycles(10_000, 0)
        c1 = m.cycles(10_000, 10)
        c2 = m.cycles(10_000, 20)
        assert c2 - c1 == pytest.approx(c1 - c0)

    def test_evaluate_result_fields(self):
        r = IntervalIpcModel(SKYLAKE_LIKE).evaluate(10_000, 50)
        assert r.mpki == pytest.approx(5.0)
        assert r.ipc == pytest.approx(10_000 / r.cycles)
        assert r.cpi == pytest.approx(1 / r.ipc)

    def test_validation(self):
        m = IntervalIpcModel(SKYLAKE_LIKE)
        with pytest.raises(ValueError):
            m.cycles(0, 0)
        with pytest.raises(ValueError):
            m.cycles(10, 20)

    @given(
        mispredictions=st.integers(0, 1000),
        scale=st.sampled_from(SCALING_FACTORS),
    )
    @settings(max_examples=40, deadline=None)
    def test_ipc_positive_and_bounded_property(self, mispredictions, scale):
        m = IntervalIpcModel(SKYLAKE_LIKE.scaled(scale))
        ipc = m.ipc(10_000, mispredictions)
        assert 0 < ipc
        # IPC cannot exceed the issue-width bound.
        assert ipc <= SKYLAKE_LIKE.base_width * scale + 1e-9


class TestDiminishingReturns:
    """The qualitative content of Fig. 1: scaling the pipeline without
    better branch prediction produces diminishing returns."""

    def test_imperfect_bp_saturates(self):
        n, mis = 1_000_000, 9_000  # ~0.9% misprediction-per-instruction
        rel = [
            relative_ipc(SKYLAKE_LIKE, s, n, mis) for s in SCALING_FACTORS
        ]
        gains = np.diff(rel)
        assert (gains[1:] <= gains[:-1] + 1e-9).all()  # shrinking steps
        # Perfect BP keeps scaling much further.
        rel_perfect = relative_ipc(SKYLAKE_LIKE, 32, n, 0, baseline_mispredictions=mis)
        assert rel_perfect > rel[-1] * 1.5

    def test_opportunity_grows_with_scale(self):
        n, mis = 1_000_000, 9_000
        opp = []
        for s in (1, 4):
            perfect = relative_ipc(SKYLAKE_LIKE, s, n, 0, baseline_mispredictions=mis)
            base = relative_ipc(SKYLAKE_LIKE, s, n, mis)
            opp.append(perfect / base - 1)
        assert opp[1] > opp[0]


class TestEventModel:
    def test_agrees_with_interval_when_no_mispredictions(self):
        ev = EventFrontEndModel(SKYLAKE_LIKE)
        iv = IntervalIpcModel(SKYLAKE_LIKE)
        assert ev.cycles(10_000, []) == pytest.approx(iv.cycles(10_000, 0))

    def test_charges_more_than_interval_model(self):
        # The ramp cost makes the event model strictly more pessimistic.
        positions = list(range(0, 10_000, 500))
        ev = EventFrontEndModel(SKYLAKE_LIKE).cycles(10_000, positions)
        iv = IntervalIpcModel(SKYLAKE_LIKE).cycles(10_000, len(positions))
        assert ev > iv

    def test_bursty_mispredictions_cheaper_than_spread(self):
        # Clustered flushes overlap their ramps (segments shorter than the
        # ramp charge less), so bursty placement costs fewer cycles.
        n, k = 100_000, 20
        spread = list(range(0, n, n // k))[:k]
        bursty = list(range(0, k * 10, 10))
        m = EventFrontEndModel(SKYLAKE_LIKE)
        assert m.cycles(n, bursty) < m.cycles(n, spread)

    def test_position_validation(self):
        m = EventFrontEndModel(SKYLAKE_LIKE)
        with pytest.raises(ValueError):
            m.cycles(100, [200])


class TestGapClosed:
    def test_full_closure(self):
        assert ipc_gap_closed(SKYLAKE_LIKE, 1, 10_000, 100, 0) == pytest.approx(1.0)

    def test_no_closure(self):
        assert ipc_gap_closed(SKYLAKE_LIKE, 1, 10_000, 100, 100) == pytest.approx(0.0)

    def test_partial_monotone(self):
        vals = [
            ipc_gap_closed(SKYLAKE_LIKE, 1, 10_000, 100, m)
            for m in (80, 50, 20)
        ]
        assert vals == sorted(vals)
