"""Tests for the trace-driven simulator."""

import numpy as np
import pytest

from repro.core.types import BranchTrace
from repro.pipeline.simulator import simulate_trace
from repro.predictors.oracle import Perfect
from repro.predictors.simple import AlwaysTaken, Bimodal, NeverTaken


def alternating_trace(n=100, stride=4):
    return BranchTrace(
        ips=[0x40] * n,
        taken=[i % 2 == 0 for i in range(n)],
        instr_indices=[i * stride for i in range(n)],
        instr_count=n * stride,
    )


class TestSimulateTrace:
    def test_counts_every_conditional(self):
        t = alternating_trace(100)
        res = simulate_trace(t, AlwaysTaken())
        assert res.stats.total_executions == 100
        assert res.stats.total_mispredictions == 50

    def test_perfect_predictor_never_mispredicts(self):
        t = alternating_trace(100)
        res = simulate_trace(t, Perfect())
        assert res.mispredictions == 0
        assert res.accuracy == 1.0

    def test_non_conditional_not_scored(self):
        t = BranchTrace(
            ips=[1, 2, 3],
            taken=[True] * 3,
            kinds=[0, 2, 1],  # conditional, call, jump
        )
        res = simulate_trace(t, AlwaysTaken())
        assert res.stats.total_executions == 1

    def test_warmup_excluded_from_scoring(self):
        t = alternating_trace(100)
        res = simulate_trace(t, AlwaysTaken(), warmup_branches=20)
        assert res.stats.total_executions == 80

    def test_slice_stats_partition_totals(self):
        t = alternating_trace(100, stride=4)  # 400 instructions
        res = simulate_trace(t, AlwaysTaken(), slice_instructions=100)
        assert len(res.slice_stats) == 4
        assert sum(s.total_executions for s in res.slice_stats) == 100
        assert (
            sum(s.total_mispredictions for s in res.slice_stats)
            == res.mispredictions
        )

    def test_mispredict_positions_recorded(self):
        t = alternating_trace(10)
        res = simulate_trace(t, AlwaysTaken(), record_mispredict_positions=True)
        # Odd iterations are not-taken -> mispredicted by AlwaysTaken.
        np.testing.assert_array_equal(
            res.mispredict_positions, [4, 12, 20, 28, 36]
        )

    def test_positions_none_by_default(self):
        res = simulate_trace(alternating_trace(10), AlwaysTaken())
        assert res.mispredict_positions is None

    def test_mpki(self):
        t = alternating_trace(100, stride=10)  # 1000 instructions
        res = simulate_trace(t, AlwaysTaken())
        assert res.mpki == pytest.approx(50.0)

    def test_predictor_actually_trains(self):
        # A bimodal fed a constant branch converges: later slices have
        # fewer mispredictions than the first.
        n = 200
        t = BranchTrace(
            ips=[0x40] * n, taken=[True] * n,
            instr_indices=list(range(0, 4 * n, 4)), instr_count=4 * n,
        )
        res = simulate_trace(t, Bimodal(), slice_instructions=200)
        assert res.slice_stats[0].total_mispredictions >= \
            res.slice_stats[-1].total_mispredictions
        assert res.mispredictions <= 2

    def test_invalid_slice_length(self):
        with pytest.raises(ValueError):
            simulate_trace(alternating_trace(10), AlwaysTaken(), slice_instructions=0)

    def test_predictor_name_reported(self):
        res = simulate_trace(alternating_trace(4), NeverTaken())
        assert res.predictor_name == "never-taken"


class TestWarmupSliceInteraction:
    """Warmup exclusion composes with slicing; the kernel path must agree.

    Each case is parametrized over both simulation paths — scalar loop and
    vectorized kernels — so the semantics are pinned once and enforced on
    every implementation.
    """

    @pytest.fixture(params=["0", "1"], ids=["scalar", "kernels"])
    def sim(self, request, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", request.param)
        return simulate_trace

    def test_warmup_spans_slice_boundary(self, sim):
        # 100 branches at stride 4; slices of 100 instructions hold 25
        # branches each.  A 30-branch warmup empties slice 0 and eats the
        # first 5 scored branches of slice 1.
        t = alternating_trace(100, stride=4)
        res = sim(t, AlwaysTaken(), slice_instructions=100, warmup_branches=30)
        assert len(res.slice_stats) == 4
        assert res.slice_stats[0].total_executions == 0
        assert res.slice_stats[1].total_executions == 20
        assert res.slice_stats[2].total_executions == 25
        assert res.slice_stats[3].total_executions == 25
        assert res.stats.total_executions == 70

    def test_warmup_trains_but_does_not_score(self, sim):
        # All-taken stream: Bimodal mispredicts at most its cold start.
        # With warmup covering the cold counters, scored accuracy is 1.0.
        n = 50
        t = BranchTrace(ips=[0x40] * n, taken=[True] * n)
        res = sim(t, Bimodal(), warmup_branches=4)
        assert res.stats.total_executions == n - 4
        assert res.stats.total_mispredictions == 0

    def test_warmup_exceeding_trace_scores_nothing(self, sim):
        t = alternating_trace(20, stride=4)
        res = sim(t, AlwaysTaken(), slice_instructions=40, warmup_branches=10_000)
        assert res.stats.total_executions == 0
        # Boundary crossings still close (empty) slices.
        assert len(res.slice_stats) >= 1
        assert all(s.total_executions == 0 for s in res.slice_stats)

    def test_mispredict_positions_respect_warmup(self, sim):
        t = alternating_trace(10)  # odd iterations mispredicted
        res = sim(
            t, AlwaysTaken(), warmup_branches=3, record_mispredict_positions=True
        )
        np.testing.assert_array_equal(res.mispredict_positions, [12, 20, 28, 36])

    def test_slice_totals_partition_scored_stream(self, sim):
        t = alternating_trace(97, stride=5)
        res = sim(t, Bimodal(), slice_instructions=111, warmup_branches=13)
        assert (
            sum(s.total_executions for s in res.slice_stats)
            == res.stats.total_executions
            == 97 - 13
        )
        assert (
            sum(s.total_mispredictions for s in res.slice_stats)
            == res.stats.total_mispredictions
        )
