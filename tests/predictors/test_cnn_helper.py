"""Tests for the CNN helper predictor."""

import numpy as np
import pytest

from repro.core.types import BranchTrace
from repro.predictors.cnn_helper import (
    CnnHelperConfig,
    CnnHelperPredictor,
    HelperAugmentedPredictor,
    encode_token,
    extract_branch_dataset,
)
from repro.predictors.simple import NeverTaken


def xor_dataset(n=3000, history=12, seed=0, jitter=0):
    """Histories mimicking the noisy-xor H2P: two marker branches (tokens
    10/11 and 20/21, low bit = direction) appear amid noise tokens, and the
    outcome is the XOR of their direction bits.  Learnable by the conv+pool
    architecture when the conv window spans the marker pair."""
    rng = np.random.default_rng(seed)
    noise = rng.choice([40, 42, 44, 46, 48], size=(n, history)).astype(np.uint8)
    X = noise
    a = rng.integers(0, 2, n)
    b = rng.integers(0, 2, n)
    pos_a = 3 + (rng.integers(0, jitter + 1, n) if jitter else 0)
    pos_b = 7 + (rng.integers(0, jitter + 1, n) if jitter else 0)
    X[np.arange(n), pos_a] = 10 + a
    X[np.arange(n), pos_b] = 20 + b
    y = (a ^ b).astype(np.int8)
    return X, y


class TestEncoding:
    def test_token_range(self):
        for ip in (0, 4, 0xFFF8):
            for taken in (False, True):
                t = encode_token(ip, taken)
                assert 0 <= t < 256
                assert t & 1 == int(taken)

    def test_extract_dataset_shapes(self):
        n = 50
        ips = [0x40 if i % 2 else 0x80 for i in range(n)]
        taken = [i % 3 == 0 for i in range(n)]
        trace = BranchTrace(ips=ips, taken=taken)
        X, y = extract_branch_dataset(trace, 0x40, history_length=8)
        assert X.shape[1] == 8
        assert len(X) == len(y)
        assert len(X) > 0

    def test_extract_skips_short_history(self):
        trace = BranchTrace(ips=[0x40] * 5, taken=[True] * 5)
        X, y = extract_branch_dataset(trace, 0x40, history_length=10)
        assert len(X) == 0

    def test_history_length_validation(self):
        trace = BranchTrace(ips=[1], taken=[True])
        with pytest.raises(ValueError):
            extract_branch_dataset(trace, 1, history_length=0)


class TestTraining:
    def test_loss_decreases(self):
        X, y = xor_dataset()
        h = CnnHelperPredictor(0x40, CnnHelperConfig(
            history_length=12, conv_width=6, num_filters=16, epochs=6))
        losses = h.train(X, y)
        assert losses[-1] < losses[0]

    def test_learns_positional_xor(self):
        X, y = xor_dataset(n=5000)
        cfg = CnnHelperConfig(history_length=12, conv_width=6,
                              num_filters=24, epochs=25)
        h = CnnHelperPredictor(0x40, cfg)
        h.train(X[:4000], y[:4000])
        assert h.accuracy(X[4000:], y[4000:]) > 0.9

    def test_empty_training_data_rejected(self):
        h = CnnHelperPredictor(1, CnnHelperConfig(epochs=1))
        with pytest.raises(ValueError):
            h.train(np.zeros((0, 42), dtype=np.uint8), np.zeros(0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CnnHelperConfig(history_length=2, conv_width=5)


class TestQuantization:
    def test_two_bit_levels(self):
        X, y = xor_dataset(n=800)
        h = CnnHelperPredictor(0x40, CnnHelperConfig(
            history_length=12, conv_width=6, num_filters=8, epochs=3))
        h.train(X, y)
        h.quantize(2)
        # Per output channel, at most 4 distinct levels.
        for col in range(h.conv_w.shape[1]):
            assert len(np.unique(h.conv_w[:, col])) <= 4
        for col in range(h.embedding.shape[1]):
            assert len(np.unique(h.embedding[:, col])) <= 4
        assert h.quantized

    def test_quantized_accuracy_with_finetune(self):
        X, y = xor_dataset(n=5000)
        cfg = CnnHelperConfig(history_length=12, conv_width=6,
                              num_filters=24, epochs=25)
        h = CnnHelperPredictor(0x40, cfg)
        h.train(X[:4000], y[:4000])
        h.quantize(2, finetune_histories=X[:4000], finetune_outcomes=y[:4000])
        assert h.accuracy(X[4000:], y[4000:]) > 0.75

    def test_bits_validation(self):
        h = CnnHelperPredictor(1)
        with pytest.raises(ValueError):
            h.quantize(0)

    def test_storage_scales_with_bits(self):
        h = CnnHelperPredictor(1)
        assert h.storage_bits(4) == 2 * h.storage_bits(2)


class TestHelperAugmentedPredictor:
    def _trained_helper(self, history=8):
        cfg = CnnHelperConfig(history_length=history, conv_width=4,
                              num_filters=8, epochs=4)
        h = CnnHelperPredictor(0x40, cfg)
        # Train "always taken" for its branch.
        X = np.random.default_rng(0).integers(0, 256, (400, history), dtype=np.uint8)
        y = np.ones(400)
        h.train(X, y)
        return h

    def test_helper_owns_its_branch(self):
        helper = self._trained_helper()
        aug = HelperAugmentedPredictor(NeverTaken(), [helper])
        # Warm the history window.
        for _i in range(10):
            aug.predict(0x80)
            aug.update(0x80, True)
        assert aug.predict(0x40) is True  # helper says taken; base never

    def test_base_used_before_history_warm(self):
        helper = self._trained_helper()
        aug = HelperAugmentedPredictor(NeverTaken(), [helper])
        assert aug.predict(0x40) is False  # not enough history yet

    def test_other_branches_use_base(self):
        helper = self._trained_helper()
        aug = HelperAugmentedPredictor(NeverTaken(), [helper])
        for _i in range(10):
            aug.predict(0x80)
            aug.update(0x80, True)
        assert aug.predict(0x80) is False

    def test_needs_helpers(self):
        with pytest.raises(ValueError):
            HelperAugmentedPredictor(NeverTaken(), [])

    def test_storage_includes_helpers(self):
        helper = self._trained_helper()
        aug = HelperAugmentedPredictor(NeverTaken(), [helper])
        assert aug.storage_bits() == helper.storage_bits()
