"""Tests for the loop predictor and IMLI counter."""

import pytest

from repro.predictors.loop import ImliCounter, LoopPredictor


def run_loop(predictor, trips, repetitions, ip=0x4000, score_after_rep=40):
    mis = n = 0
    for rep in range(repetitions):
        for i in range(trips):
            taken = i < trips - 1
            pred = predictor.predict(ip)
            if rep >= score_after_rep:
                n += 1
                mis += pred != taken
            predictor.update(ip, taken, mispredicted=pred != taken)
    return 1 - mis / n if n else 1.0


class TestLoopPredictor:
    def test_perfect_on_fixed_trip_loop(self):
        assert run_loop(LoopPredictor(), trips=12, repetitions=120) == 1.0

    def test_perfect_on_short_loop(self):
        assert run_loop(LoopPredictor(), trips=3, repetitions=120) == 1.0

    def test_adapts_to_changed_trip_count(self):
        p = LoopPredictor()
        run_loop(p, trips=10, repetitions=60, score_after_rep=60)
        # Trip count changes: after re-learning, accuracy recovers.
        acc = run_loop(p, trips=7, repetitions=80, score_after_rep=40)
        assert acc > 0.9

    def test_confidence_flag(self):
        p = LoopPredictor()
        run_loop(p, trips=8, repetitions=60, score_after_rep=60)
        p.predict(0x4000)
        assert p.is_confident

    def test_not_confident_for_unknown_branch(self):
        p = LoopPredictor()
        p.predict(0x9999)
        assert not p.is_confident

    def test_irregular_branch_never_confident(self):
        import random

        rng = random.Random(0)
        p = LoopPredictor()
        confident_predictions = 0
        for _ in range(2000):
            pred = p.predict(0x4000)
            confident_predictions += p.is_confident
            t = rng.random() < 0.5
            p.update(0x4000, t, mispredicted=pred != t)
        assert confident_predictions < 200

    def test_storage_bits(self):
        p = LoopPredictor(log_entries=6)
        assert p.storage_bits() == 64 * (14 + 28 + 2 + 3 + 1)

    def test_reset(self):
        p = LoopPredictor()
        run_loop(p, trips=5, repetitions=60, score_after_rep=60)
        p.reset()
        p.predict(0x4000)
        assert not p.is_confident

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LoopPredictor(log_entries=0)


class TestImliCounter:
    def test_counts_backward_taken_runs(self):
        c = ImliCounter()
        for _ in range(5):
            c.observe(ip=0x100, target=0x40, taken=True)  # backward taken
        assert c.count == 5

    def test_reset_on_exit(self):
        c = ImliCounter()
        for _ in range(3):
            c.observe(ip=0x100, target=0x40, taken=True)
        c.observe(ip=0x100, target=0x40, taken=False)
        assert c.count == 0

    def test_new_backward_branch_restarts(self):
        c = ImliCounter()
        for _ in range(3):
            c.observe(ip=0x100, target=0x40, taken=True)
        c.observe(ip=0x200, target=0x80, taken=True)
        assert c.count == 1

    def test_forward_branches_ignored(self):
        c = ImliCounter()
        c.observe(ip=0x100, target=0x40, taken=True)
        c.observe(ip=0x100, target=0x200, taken=True)  # forward
        assert c.count == 1

    def test_saturation(self):
        c = ImliCounter(max_count=8)
        for _ in range(100):
            c.observe(ip=0x100, target=0x40, taken=True)
        assert c.count == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            ImliCounter(max_count=0)
