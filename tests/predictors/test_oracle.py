"""Tests for the oracle predictors."""

import pytest

from repro.predictors.oracle import Perfect, PerfectFilter
from repro.predictors.simple import NeverTaken


class TestPerfect:
    def test_always_correct(self):
        p = Perfect()
        for taken in [True, False, True, True]:
            p.set_outcome(taken)
            assert p.predict(0x40) == taken
            p.update(0x40, taken)

    def test_requires_outcome(self):
        p = Perfect()
        with pytest.raises(RuntimeError):
            p.predict(0x40)

    def test_outcome_consumed_by_update(self):
        p = Perfect()
        p.set_outcome(True)
        p.predict(1)
        p.update(1, True)
        with pytest.raises(RuntimeError):
            p.predict(1)

    def test_zero_storage(self):
        assert Perfect().storage_bits() == 0


class TestPerfectFilter:
    def test_idealized_ips_always_correct(self):
        p = PerfectFilter(NeverTaken(), perfect_ips=[0x40])
        p.set_outcome(True)
        assert p.predict(0x40) is True  # inner would say False
        p.update(0x40, True)

    def test_other_ips_use_inner(self):
        p = PerfectFilter(NeverTaken(), perfect_ips=[0x40])
        p.set_outcome(True)
        assert p.predict(0x80) is False  # NeverTaken
        p.update(0x80, True)

    def test_predicate_variant(self):
        p = PerfectFilter(NeverTaken(), predicate=lambda ip: ip < 0x100)
        p.set_outcome(True)
        assert p.predict(0x80) is True
        p.update(0x80, True)
        p.set_outcome(True)
        assert p.predict(0x200) is False
        p.update(0x200, True)

    def test_exactly_one_selector_required(self):
        with pytest.raises(ValueError):
            PerfectFilter(NeverTaken())
        with pytest.raises(ValueError):
            PerfectFilter(NeverTaken(), perfect_ips=[1], predicate=lambda ip: True)

    def test_missing_outcome_raises_on_idealized_branch(self):
        p = PerfectFilter(NeverTaken(), perfect_ips=[0x40])
        with pytest.raises(RuntimeError):
            p.predict(0x40)

    def test_storage_delegates_to_inner(self):
        from repro.predictors.simple import Bimodal

        inner = Bimodal(log_entries=8)
        p = PerfectFilter(inner, perfect_ips=[1])
        assert p.storage_bits() == inner.storage_bits()
