"""Tests for the perceptron predictors."""

import random

import pytest

from repro.core.types import BranchKind
from repro.predictors.perceptron import PathPerceptron, Perceptron


def drive(predictor, stream, score_after=0):
    correct = total = 0
    for i, (ip, taken) in enumerate(stream):
        pred = predictor.predict(ip)
        if i >= score_after:
            total += 1
            correct += pred == taken
        predictor.update(ip, taken)
    return correct / total if total else 1.0


def correlated_stream(n, noise_branches=4, seed=0):
    """Target branch = XOR of two specific earlier branches, with noise
    branches in between — the case perceptrons handle by weighting
    positions (noise positions get near-zero weights)."""
    rng = random.Random(seed)
    stream = []
    for _ in range(n):
        a = rng.random() < 0.5
        b = rng.random() < 0.5
        stream.append((0x100, a))
        stream.append((0x200, b))
        for j in range(noise_branches):
            stream.append((0x300 + j * 16, rng.random() < 0.5))
        stream.append((0x500, a))  # perfectly correlated with position k
    return stream


class TestPerceptron:
    def test_learns_positional_correlation(self):
        p = Perceptron(history_length=16)
        stream = correlated_stream(1500)
        # Score only the target branch.
        correct = total = 0
        for i, (ip, taken) in enumerate(stream):
            pred = p.predict(ip)
            if ip == 0x500 and i > len(stream) // 4:
                total += 1
                correct += pred == taken
            p.update(ip, taken)
        assert correct / total > 0.95

    def test_learns_bias(self):
        p = Perceptron()
        stream = [(0x40, True)] * 500
        assert drive(p, stream, score_after=50) == 1.0

    def test_theta_formula(self):
        p = Perceptron(history_length=32)
        assert p.theta == int(1.93 * 32 + 14)

    def test_storage_bits(self):
        p = Perceptron(log_entries=9, history_length=32, weight_bits=8)
        assert p.storage_bits() == (1 << 9) * 33 * 8 + 32

    def test_weights_saturate(self):
        p = Perceptron(log_entries=4, history_length=4, weight_bits=4)
        for _ in range(1000):
            p.predict(0)
            p.update(0, True)
        flat = [w for row in p._weights for w in row]
        assert max(flat) <= 7 and min(flat) >= -8

    def test_reset(self):
        p = Perceptron()
        p.predict(1)
        p.update(1, True)
        p.reset()
        assert all(w == 0 for row in p._weights for w in row)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Perceptron(weight_bits=1)


class TestPathPerceptron:
    def test_learns_correlation(self):
        p = PathPerceptron(history_length=16)
        stream = correlated_stream(1200)
        correct = total = 0
        for i, (ip, taken) in enumerate(stream):
            pred = p.predict(ip)
            if ip == 0x500 and i > len(stream) // 4:
                total += 1
                correct += pred == taken
            p.update(ip, taken)
        assert correct / total > 0.9

    def test_note_branch_shifts_path(self):
        p = PathPerceptron(history_length=4)
        p.note_branch(0x40, 0x80, BranchKind.CALL)
        assert p._path[0] == 0x40
        assert p._dir_history[0] == 1

    def test_storage_positive(self):
        assert PathPerceptron().storage_bits() > 0

    def test_reset(self):
        p = PathPerceptron()
        p.predict(1)
        p.update(1, False)
        p.reset()
        assert all(v == 0 for v in p._dir_history)
