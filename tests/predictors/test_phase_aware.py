"""Tests for the phase recognizer and phase-bias helper (Sec. V-B)."""

import random

import pytest

from repro.predictors.phase_aware import PhaseBiasHelper, PhaseRecognizer
from repro.predictors.simple import Bimodal, NeverTaken


def feed_footprint(rec, ips, repetitions=1):
    for _ in range(repetitions):
        for ip in ips:
            rec.observe(ip)


class TestPhaseRecognizer:
    def test_distinct_footprints_get_distinct_phases(self):
        rec = PhaseRecognizer(window=64)
        region_a = [0x1000 + 16 * i for i in range(40)]
        region_b = [0x9000 + 16 * i for i in range(40)]
        feed_footprint(rec, region_a, repetitions=2)
        phase_a = rec.current_phase
        feed_footprint(rec, region_b, repetitions=2)
        phase_b = rec.current_phase
        assert phase_a != phase_b
        assert rec.num_phases >= 2

    def test_returning_phase_recognized(self):
        # Window-aligned dwells: each region occupies whole windows, so
        # signatures are not contaminated across the transition.
        rec = PhaseRecognizer(window=80)
        region_a = [0x1000 + 16 * i for i in range(40)]
        region_b = [0x9000 + 16 * i for i in range(40)]
        feed_footprint(rec, region_a, repetitions=4)
        phase_a = rec.current_phase
        feed_footprint(rec, region_b, repetitions=4)
        feed_footprint(rec, region_a, repetitions=4)
        assert rec.current_phase == phase_a
        assert rec.num_phases == 2  # no duplicate phase allocated

    def test_similar_footprints_share_phase(self):
        rec = PhaseRecognizer(window=64)
        region = [0x1000 + 16 * i for i in range(60)]
        feed_footprint(rec, region, repetitions=2)
        # Slightly perturbed footprint: same phase.
        feed_footprint(rec, region[:55] + [0xFF00, 0xFF10], repetitions=2)
        assert rec.num_phases == 1

    def test_phase_capacity_bounded(self):
        rec = PhaseRecognizer(window=16, max_phases=4)
        rng = random.Random(0)
        for _k in range(20):
            region = [rng.randrange(1 << 20) * 4 for _ in range(30)]
            feed_footprint(rec, region)
        assert rec.num_phases <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseRecognizer(window=4)
        with pytest.raises(ValueError):
            PhaseRecognizer(similarity_threshold=1.5)


class TestPhaseBiasHelper:
    def _phased_stream(self, reps=40, phase_len=80):
        """Two phases: in phase A branch X is always taken; in phase B it is
        always not-taken.  A per-IP base predictor keeps re-learning; the
        phase-conditioned helper does not."""
        stream = []
        region_a = [0x1000 + 16 * i for i in range(phase_len)]
        region_b = [0x9000 + 16 * i for i in range(phase_len)]
        for rep in range(reps):
            region, direction = (
                (region_a, True) if rep % 2 == 0 else (region_b, False)
            )
            for _ in range(3):
                for ip in region:
                    stream.append((ip, True))  # phase footprint filler
                stream.append((0x500, direction))  # the phase-flipping branch
        return stream

    def test_phase_conditioning_beats_flat_counters(self):
        stream = self._phased_stream()
        helper = PhaseBiasHelper(Bimodal(), PhaseRecognizer(window=64))
        base = Bimodal()

        def target_acc(p):
            correct = total = 0
            for i, (ip, taken) in enumerate(stream):
                pred = p.predict(ip)
                if ip == 0x500 and i > len(stream) // 2:
                    total += 1
                    correct += pred == taken
                p.update(ip, taken)
            return correct / total

        acc_helper = target_acc(helper)
        acc_base = target_acc(base)
        assert acc_helper > acc_base
        assert helper.overrides > 0
        assert helper.override_correct / helper.overrides > 0.6

    def test_no_overrides_without_utility(self):
        # If the base predictor is already perfect, the helper never earns
        # utility and never overrides.
        helper = PhaseBiasHelper(NeverTaken())
        for _ in range(2000):
            helper.predict(0x40)
            helper.update(0x40, False)
        assert helper.overrides == 0

    def test_storage_accounts_for_tables(self):
        base = Bimodal(log_entries=8)
        helper = PhaseBiasHelper(base, log_entries=10)
        assert helper.storage_bits() > base.storage_bits() + (1 << 10) * 8

    def test_reset(self):
        helper = PhaseBiasHelper(Bimodal())
        for i in range(500):
            helper.predict(0x40)
            helper.update(0x40, i % 2 == 0)
        helper.reset()
        assert helper.overrides == 0
        assert all(c == 0 for c in helper._conf)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseBiasHelper(Bimodal(), log_entries=0)
