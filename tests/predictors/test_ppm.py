"""Tests for the PPM predictor."""

import random

import pytest

from repro.predictors.ppm import PPM


def drive(predictor, stream, score_after=0):
    correct = total = 0
    for i, (ip, taken) in enumerate(stream):
        pred = predictor.predict(ip)
        if i >= score_after:
            total += 1
            correct += pred == taken
        predictor.update(ip, taken)
    return correct / total if total else 1.0


class TestPPM:
    def test_learns_periodic_pattern(self):
        stream = [(0x40, i % 5 != 4) for i in range(4000)]
        assert drive(PPM(), stream, score_after=1000) > 0.97

    def test_learns_long_period_with_long_tables(self):
        # Period 24 needs a lookback >= 24; the default max length 64 covers it.
        pattern = [True] * 23 + [False]
        stream = [(0x40, pattern[i % 24]) for i in range(6000)]
        assert drive(PPM(), stream, score_after=2000) > 0.9

    def test_update_requires_predict(self):
        p = PPM()
        with pytest.raises(RuntimeError):
            p.update(1, True)

    def test_history_lengths_must_increase(self):
        with pytest.raises(ValueError):
            PPM(history_lengths=(4, 4, 8))
        with pytest.raises(ValueError):
            PPM(history_lengths=())

    def test_storage_accounts_tables(self):
        p = PPM(history_lengths=(2, 4), log_entries=6, tag_bits=8,
                log_base_entries=8)
        expected = (1 << 8) * 2 + 4 + 2 * (1 << 6) * (8 + 3)
        assert p.storage_bits() == expected

    def test_random_stream_near_chance(self):
        rng = random.Random(0)
        stream = [(0x40, rng.random() < 0.5) for _ in range(4000)]
        acc = drive(PPM(), stream, score_after=1000)
        assert 0.4 < acc < 0.6

    def test_reset(self):
        p = PPM()
        for i in range(50):
            p.predict(0x40)
            p.update(0x40, i % 2 == 0)
        p.reset()
        assert p._history == 0
        assert all(t == -1 for table in p.tables for t in table.tags)
