"""Tests for the baseline predictors."""

import random

import pytest

from repro.predictors.simple import (
    AlwaysTaken,
    Bimodal,
    GShare,
    NeverTaken,
    TwoLevelLocal,
)


def drive(predictor, stream, score_after=0):
    """Feed (ip, taken) pairs; return accuracy after warmup."""
    correct = total = 0
    for i, (ip, taken) in enumerate(stream):
        pred = predictor.predict(ip)
        if i >= score_after:
            total += 1
            correct += pred == taken
        predictor.update(ip, taken)
    return correct / total if total else 1.0


def biased_stream(ip, p_taken, n, seed=0):
    rng = random.Random(seed)
    return [(ip, rng.random() < p_taken) for _ in range(n)]


class TestStaticPredictors:
    def test_always_taken(self):
        assert drive(AlwaysTaken(), [(1, True)] * 10) == 1.0
        assert drive(AlwaysTaken(), [(1, False)] * 10) == 0.0

    def test_never_taken(self):
        assert drive(NeverTaken(), [(1, False)] * 10) == 1.0

    def test_zero_storage(self):
        assert AlwaysTaken().storage_bits() == 0
        assert NeverTaken().storage_bits() == 0


class TestBimodal:
    def test_learns_bias(self):
        acc = drive(Bimodal(), biased_stream(0x40, 0.9, 2000), score_after=100)
        assert acc > 0.85

    def test_learns_never_taken(self):
        acc = drive(Bimodal(), [(0x40, False)] * 100, score_after=4)
        assert acc == 1.0

    def test_alternating_pattern_is_hard(self):
        stream = [(0x40, i % 2 == 0) for i in range(200)]
        acc = drive(Bimodal(), stream, score_after=10)
        assert acc < 0.7  # counters cannot track alternation

    def test_storage(self):
        assert Bimodal(log_entries=10, counter_bits=2).storage_bits() == 2048

    def test_reset(self):
        p = Bimodal()
        for _ in range(10):
            p.predict(0x40)
            p.update(0x40, True)
        p.reset()
        assert all(v == 0 for v in p._table)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Bimodal(log_entries=0)


class TestGShare:
    def test_learns_history_pattern(self):
        # Direction = previous direction of the same branch (period 2),
        # which global-history indexing captures but bimodal cannot.
        stream = [(0x40, (i // 2) % 2 == 0) for i in range(3000)]
        acc = drive(GShare(), stream, score_after=500)
        assert acc > 0.95

    def test_beats_bimodal_on_correlated_branches(self):
        rng = random.Random(1)
        stream = []
        last = True
        for _ in range(3000):
            last = rng.random() < 0.5
            stream.append((0x100, last))
            stream.append((0x200, not last))  # perfectly anti-correlated
        g = drive(GShare(), stream, score_after=500)
        b = drive(Bimodal(), stream, score_after=500)
        assert g > b + 0.2

    def test_history_bits_validation(self):
        with pytest.raises(ValueError):
            GShare(log_entries=8, history_bits=9)

    def test_storage(self):
        p = GShare(log_entries=13, history_bits=13)
        assert p.storage_bits() == (1 << 13) * 2 + 13

    def test_reset(self):
        p = GShare()
        p.predict(1)
        p.update(1, True)
        p.reset()
        assert p._history == 0


class TestTwoLevelLocal:
    def test_learns_per_branch_period(self):
        # Branch X: period 3 (T T N), branch Y: period 2 (T N) interleaved.
        stream = []
        for i in range(3000):
            stream.append((0x40, i % 3 != 2))
            stream.append((0x80, i % 2 == 0))
        acc = drive(TwoLevelLocal(), stream, score_after=500)
        assert acc > 0.95

    def test_storage(self):
        p = TwoLevelLocal(log_l1_entries=10, local_bits=10)
        assert p.storage_bits() == (1 << 10) * 10 + (1 << 10) * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoLevelLocal(log_l1_entries=0)
