"""Tests for the TAGE predictor."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import BranchKind
from repro.predictors.tage import (
    Tage,
    TageConfig,
    _Folded,
    geometric_history_lengths,
)


def small_tage(**kwargs):
    cfg = TageConfig.uniform(
        num_tables=6, log_entries=7, min_history=4, max_history=128, **kwargs
    )
    return Tage(cfg)


def drive(predictor, stream, score_after=0):
    correct = total = 0
    for i, (ip, taken) in enumerate(stream):
        pred = predictor.predict(ip)
        if i >= score_after:
            total += 1
            correct += pred == taken
        predictor.update(ip, taken)
    return correct / total if total else 1.0


class TestGeometricLengths:
    def test_endpoints(self):
        lengths = geometric_history_lengths(5, 1000, 10)
        assert lengths[0] == 5
        assert lengths[-1] == 1000

    def test_strictly_increasing(self):
        lengths = geometric_history_lengths(2, 64, 12)
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_single_table(self):
        assert geometric_history_lengths(7, 100, 1) == [7]

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_history_lengths(0, 10, 3)
        with pytest.raises(ValueError):
            geometric_history_lengths(10, 5, 3)
        with pytest.raises(ValueError):
            geometric_history_lengths(5, 10, 0)


class TestFoldedHistory:
    @given(
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=300),
        orig=st.integers(2, 60),
        comp=st.integers(2, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_incremental_matches_naive(self, bits, orig, comp):
        """The incrementally folded register equals folding the true last
        ``orig`` history bits from scratch — for any push sequence."""
        folded = _Folded(orig, comp)
        window = []
        for bit in bits:
            outbit = window[orig - 1] if len(window) >= orig else 0
            folded.update(bit, outbit)
            window.insert(0, bit)
            if len(window) > orig:
                window.pop()
        raw = 0
        for bit in reversed(window):  # oldest first -> newest ends at LSB
            raw = (raw << 1) | bit
        expected, tmp = 0, raw
        while tmp:
            expected ^= tmp & ((1 << comp) - 1)
            tmp >>= comp
        assert folded.comp == expected


class TestTageConfig:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TageConfig(num_tables=3, log_entries=(8,) * 2, tag_bits=(8,) * 3)

    def test_uniform_tag_widths_monotone(self):
        cfg = TageConfig.uniform(8, 9, 4, 200)
        assert list(cfg.tag_bits) == sorted(cfg.tag_bits)


class TestTageLearning:
    def test_learns_bias(self):
        assert drive(small_tage(), [(0x40, True)] * 400, score_after=50) > 0.99

    def test_learns_short_pattern(self):
        pattern = [True, True, False, True, False]
        stream = [(0x40, pattern[i % 5]) for i in range(4000)]
        assert drive(small_tage(), stream, score_after=1000) > 0.98

    def test_learns_long_pattern_via_long_tables(self):
        pattern = [True] * 30 + [False] * 2
        stream = [(0x40, pattern[i % 32]) for i in range(8000)]
        assert drive(small_tage(), stream, score_after=3000) > 0.95

    def test_random_stream_near_chance(self):
        rng = random.Random(3)
        stream = [(0x40, rng.random() < 0.5) for _ in range(6000)]
        acc = drive(small_tage(), stream, score_after=1000)
        assert 0.4 < acc < 0.62

    def test_correlated_branches(self):
        rng = random.Random(5)
        stream = []
        for _ in range(3000):
            a = rng.random() < 0.5
            stream.append((0x100, a))
            stream.append((0x200, a))  # copies the previous outcome
        p = small_tage()
        correct = total = 0
        for i, (ip, taken) in enumerate(stream):
            pred = p.predict(ip)
            if ip == 0x200 and i > 1000:
                total += 1
                correct += pred == taken
            p.update(ip, taken)
        assert correct / total > 0.95

    def test_cold_branch_predicted_not_taken(self):
        p = small_tage()
        assert p.predict(0xABCD) is False

    def test_note_branch_advances_history(self):
        p = small_tage()
        before = list(p._ci)
        p.note_branch(0x44, 0x80, BranchKind.CALL)
        after = list(p._ci)
        assert before != after


class TestAllocationInstrumentation:
    def test_disabled_by_default(self):
        assert small_tage().allocation_stats is None

    def test_allocations_recorded_for_hard_branch(self):
        cfg = TageConfig.uniform(6, 7, 4, 128)
        p = Tage(cfg, track_allocations=True)
        rng = random.Random(0)
        for _ in range(3000):
            t = rng.random() < 0.5
            p.predict(0x40)
            p.update(0x40, t)
        stats = p.allocation_stats
        assert stats.allocations_for(0x40) > 50
        assert stats.unique_entries_for(0x40) > 10
        # Reallocation: more allocation events than unique entries.
        assert stats.allocations_for(0x40) >= stats.unique_entries_for(0x40)

    def test_easy_branch_allocates_little(self):
        cfg = TageConfig.uniform(6, 7, 4, 128)
        p = Tage(cfg, track_allocations=True)
        for _ in range(3000):
            p.predict(0x40)
            p.update(0x40, True)
        assert p.allocation_stats.allocations_for(0x40) < 10


class TestTageHousekeeping:
    def test_storage_bits_formula(self):
        cfg = TageConfig.uniform(4, 6, 4, 64, log_base_entries=8)
        p = Tage(cfg)
        expected = (1 << 8) * 2
        for t in range(4):
            expected += (1 << 6) * (cfg.tag_bits[t] + 3 + 2)
        expected += cfg.max_history + 16 + 4 + 32
        assert p.storage_bits() == expected

    def test_reset_restores_cold_state(self):
        p = small_tage()
        for i in range(500):
            p.predict(0x40)
            p.update(0x40, i % 3 == 0)
        p.reset()
        assert p.predict(0x40) is False
        assert all(t == -1 for table in p._tags for t in table)

    def test_deterministic(self):
        def run():
            p = small_tage()
            rng = random.Random(9)
            out = []
            for _ in range(1000):
                ip = 0x40 + 16 * rng.randrange(8)
                t = rng.random() < 0.5
                out.append(p.predict(ip))
                p.update(ip, t)
            return out

        assert run() == run()
