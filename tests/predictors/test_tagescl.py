"""Tests for the TAGE-SC-L composite and its size presets."""

import random

import pytest

from repro.core.storage import StorageBudget
from repro.predictors.statistical_corrector import StatisticalCorrector
from repro.predictors.tagescl import STORAGE_PRESETS_KIB, make_tage_sc_l


def drive(predictor, stream, score_after=0):
    correct = total = 0
    for i, (ip, taken) in enumerate(stream):
        pred = predictor.predict(ip)
        if i >= score_after:
            total += 1
            correct += pred == taken
        predictor.update(ip, taken)
    return correct / total if total else 1.0


class TestPresets:
    @pytest.mark.parametrize("kib", STORAGE_PRESETS_KIB)
    def test_fits_budget(self, kib):
        p = make_tage_sc_l(kib)
        assert StorageBudget(kib, slack=0.05).fits(p)

    def test_storage_monotone_in_budget(self):
        sizes = [make_tage_sc_l(kib).storage_bits() for kib in STORAGE_PRESETS_KIB]
        assert sizes == sorted(sizes)

    def test_names_embed_budget(self):
        assert make_tage_sc_l(8).name == "tage-sc-l-8kb"

    def test_history_reach(self):
        assert make_tage_sc_l(8).tage.config.max_history == 1000
        assert make_tage_sc_l(64).tage.config.max_history == 3000

    def test_too_small_budget_rejected(self):
        with pytest.raises(ValueError):
            make_tage_sc_l(4)


class TestComposite:
    def test_loop_predictor_rescues_noisy_counted_loop(self):
        # Random branches between loop iterations pollute the global
        # history, defeating TAGE's pattern matching on the loop exit; the
        # IP-keyed loop predictor is immune and rescues it.
        rng = random.Random(0)
        trips = 37
        stream = []
        for _rep in range(120):
            for i in range(trips):
                stream.append((0x40, i != trips - 1))
                for _ in range(4):
                    stream.append((0x1000 + rng.randrange(50) * 16,
                                   rng.random() < 0.5))
        def loop_only_acc(p):
            correct = total = 0
            for i, (ip, taken) in enumerate(stream):
                pred = p.predict(ip)
                if ip == 0x40 and i > len(stream) // 2:
                    total += 1
                    correct += pred == taken
                p.update(ip, taken)
            return correct / total
        acc_with = loop_only_acc(make_tage_sc_l(8))
        acc_without = loop_only_acc(make_tage_sc_l(8, enable_loop=False))
        assert acc_with > acc_without
        assert acc_with > 0.99

    def test_sc_can_be_disabled(self):
        p = make_tage_sc_l(8, enable_sc=False)
        assert p.sc is None
        assert drive(p, [(0x40, True)] * 200, score_after=20) > 0.99

    def test_component_flags_reduce_storage(self):
        full = make_tage_sc_l(8).storage_bits()
        no_sc = make_tage_sc_l(8, enable_sc=False).storage_bits()
        no_loop = make_tage_sc_l(8, enable_loop=False).storage_bits()
        assert no_sc < full
        assert no_loop < full

    def test_mixed_stream_learning(self):
        p = make_tage_sc_l(8)
        rng = random.Random(2)
        stream = []
        for i in range(4000):
            stream.append((0x100, i % 4 != 3))  # periodic
            stream.append((0x200, True))  # constant
            stream.append((0x300, rng.random() < 0.9))  # biased
        acc = drive(p, stream, score_after=3000)
        assert acc > 0.92

    def test_reset(self):
        p = make_tage_sc_l(8)
        for _i in range(300):
            p.predict(0x40)
            p.update(0x40, True)
        p.reset()
        assert p.predict(0x40) is False

    def test_predict_with_target_feeds_imli(self):
        p = make_tage_sc_l(8)
        for _ in range(5):
            p.predict_with_target(0x100, 0x40)
            p.update(0x100, True)
        assert p.imli.count == 5

    def test_allocation_tracking_passthrough(self):
        p = make_tage_sc_l(8, track_allocations=True)
        assert p.allocation_stats is not None


class TestStatisticalCorrector:
    def test_inverts_when_strongly_disagreeing(self):
        sc = StatisticalCorrector(initial_threshold=4)
        # Train: outcome always False while TAGE claims True.
        for _ in range(300):
            sc.classify(
                0x40, tage_pred=True, tage_confident=False,
                ghist_bits=0, local_hist=0, imli_count=0,
            )
            sc.train(False)
        final = sc.classify(
            0x40, tage_pred=True, tage_confident=False,
            ghist_bits=0, local_hist=0, imli_count=0,
        )
        assert final is False

    def test_respects_confident_tage(self):
        sc = StatisticalCorrector()
        pred = sc.classify(
            0x40, tage_pred=True, tage_confident=True,
            ghist_bits=0, local_hist=0, imli_count=0,
        )
        assert pred is True  # untrained SC does not override

    def test_threshold_adapts_upward_on_bad_overrides(self):
        sc = StatisticalCorrector(initial_threshold=4)
        start = sc.threshold
        # Make the SC confidently wrong repeatedly.
        for _ in range(3000):
            sc.classify(
                0x40, tage_pred=False, tage_confident=False,
                ghist_bits=0, local_hist=0, imli_count=0,
            )
            sc.train(sc._last_sum < 0)  # outcome always opposes the SC sum
        assert sc.threshold >= start

    def test_storage_bits(self):
        sc = StatisticalCorrector(log_entries=8, history_folds=(4, 8))
        assert sc.storage_bits() == 5 * (1 << 8) * 6 + 16

    def test_validation(self):
        with pytest.raises(ValueError):
            StatisticalCorrector(initial_threshold=0)
