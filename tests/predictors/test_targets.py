"""Tests for target prediction: BTB, RAS, and ITTAGE."""

import random

import pytest

from repro.core.types import BranchKind, BranchTrace
from repro.predictors.targets import (
    BranchTargetBuffer,
    Ittage,
    ReturnAddressStack,
    simulate_targets,
)


class TestBranchTargetBuffer:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer()
        assert btb.predict(0x40) is None
        btb.update(0x40, 0x100)
        assert btb.predict(0x40) == 0x100

    def test_target_update(self):
        btb = BranchTargetBuffer()
        btb.update(0x40, 0x100)
        btb.update(0x40, 0x200)
        assert btb.predict(0x40) == 0x200

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(sets_log2=1, ways=2)
        # Three IPs mapping to the same set evict the least recently used.
        a, b, c = 0x40, 0x40 + 8, 0x40 + 16
        btb.update(a, 1)
        btb.update(b, 2)
        btb.predict(a)  # a becomes MRU
        btb.update(c, 3)  # evicts b
        assert btb.predict(a) == 1
        assert btb.predict(b) is None
        assert btb.predict(c) == 3

    def test_storage(self):
        btb = BranchTargetBuffer(sets_log2=4, ways=2, tag_bits=16)
        assert btb.storage_bits() == 16 * 2 * (16 + 32)

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(sets_log2=0)


class TestReturnAddressStack:
    def test_lifo_order(self):
        ras = ReturnAddressStack()
        ras.push(1)
        ras.push(2)
        assert ras.predict_and_pop() == 2
        assert ras.predict_and_pop() == 1

    def test_underflow_returns_none(self):
        assert ReturnAddressStack().predict_and_pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        for v in (1, 2, 3):
            ras.push(v)
        assert ras.overflows == 1
        assert ras.predict_and_pop() == 3
        assert ras.predict_and_pop() == 2
        assert ras.predict_and_pop() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)


class TestIttage:
    def _drive(self, predictor, sequence, repetitions, ip=0x80,
               score_after_rep=5):
        """Indirect branch cycling through a target sequence."""
        correct = total = 0
        for rep in range(repetitions):
            for target in sequence:
                pred = predictor.predict(ip)
                if rep >= score_after_rep:
                    total += 1
                    correct += pred == target
                predictor.update(ip, target, pred)
        return correct / total

    def test_monomorphic_target_learned_immediately(self):
        acc = self._drive(Ittage(), [0x1000], repetitions=20, score_after_rep=2)
        assert acc == 1.0

    def test_cyclic_targets_learned_from_history(self):
        # A repeating 6-target cycle: the last-target base alone gets 0%,
        # history-indexed tagged entries disambiguate the position.
        targets = [0x1000 + 64 * i for i in range(6)]
        acc = self._drive(Ittage(), targets, repetitions=60, score_after_rep=30)
        assert acc > 0.9

    def test_random_targets_unpredictable(self):
        rng = random.Random(0)
        targets = [0x1000 + 64 * rng.randrange(128) for _ in range(2000)]
        p = Ittage()
        correct = 0
        for t in targets:
            pred = p.predict(0x80)
            correct += pred == t
            p.update(0x80, t, pred)
        assert correct / len(targets) < 0.1

    def test_direction_history_feeds_prediction(self):
        # Target depends on the preceding conditional's direction.
        p = Ittage()
        rng = random.Random(1)
        correct = total = 0
        for i in range(4000):
            d = rng.random() < 0.5
            p.note_direction(d)
            target = 0x1000 if d else 0x2000
            pred = p.predict(0x80)
            if i > 2000:
                total += 1
                correct += pred == target
            p.update(0x80, target, pred)
        assert correct / total > 0.9

    def test_storage_positive(self):
        assert Ittage().storage_bits() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Ittage(num_tables=0)


class TestSimulateTargets:
    def make_trace(self):
        """calls/returns nested properly plus a patterned indirect branch."""
        records = []
        seq = [0x3000, 0x3040, 0x3080]
        k = 0
        for rep in range(200):
            records.append((0x100, 1, 0x2000, int(BranchKind.CALL)))
            records.append((0x2010, 1, seq[k % 3], int(BranchKind.INDIRECT)))
            k += 1
            records.append((0x2020, 1, 0x110, int(BranchKind.RETURN)))
            records.append((0x120, rep % 2, 0x100, int(BranchKind.CONDITIONAL)))
        return BranchTrace(
            ips=[r[0] for r in records],
            taken=[r[1] for r in records],
            targets=[r[2] for r in records],
            kinds=[r[3] for r in records],
        )

    def test_returns_perfect_with_balanced_stack(self):
        res = simulate_targets(self.make_trace())
        assert res.return_stats.accuracy == 1.0

    def test_indirect_pattern_learned(self):
        res = simulate_targets(self.make_trace())
        assert res.indirect_accuracy > 0.75

    def test_conditionals_not_scored(self):
        res = simulate_targets(self.make_trace())
        assert res.indirect_stats.total_executions == 200
        assert res.return_stats.total_executions == 200

    def test_btb_misses_bounded(self):
        res = simulate_targets(self.make_trace())
        # Only three static non-conditional IPs -> at most a few cold misses.
        assert res.btb_misses <= 3

    def test_uniform_dispatch_unpredictable(self, lcf_trace):
        res = simulate_targets(lcf_trace.trace)
        # The LCF dispatch selects handlers from fresh input draws: no
        # predictor can do materially better than chance over hundreds of
        # targets.  Returns stay near-perfect.
        assert res.indirect_accuracy < 0.2
        assert res.return_stats.accuracy > 0.95
