"""Tests for the tournament and O-GEHL predictors."""

import random

import pytest

from repro.predictors.gehl import OGehl
from repro.predictors.simple import Bimodal, GShare, NeverTaken, TwoLevelLocal
from repro.predictors.tournament import Tournament


def drive(predictor, stream, score_after=0):
    correct = total = 0
    for i, (ip, taken) in enumerate(stream):
        pred = predictor.predict(ip)
        if i >= score_after:
            total += 1
            correct += pred == taken
        predictor.update(ip, taken)
    return correct / total if total else 1.0


class TestTournament:
    def test_chooser_learns_better_component(self):
        # Branch X is locally periodic (local two-level wins); branch Y is
        # globally correlated (gshare wins).  The tournament should match
        # the best component on each.
        stream = []
        rng = random.Random(0)
        for i in range(4000):
            stream.append((0x40, i % 3 != 2))
            flip = rng.random() < 0.5
            stream.append((0x80, flip))
            stream.append((0xC0, flip))  # copies the previous outcome
        t = Tournament()
        acc_t = drive(t, stream, score_after=3000)
        acc_first = drive(TwoLevelLocal(), stream, score_after=3000)
        acc_second = drive(GShare(), stream, score_after=3000)
        assert acc_t >= min(acc_first, acc_second)
        assert acc_t >= max(acc_first, acc_second) - 0.05

    def test_picks_correct_component_per_branch(self):
        # First component always right, second always wrong for this branch.
        class Fixed(NeverTaken):
            def __init__(self, value):
                self._value = value

            def predict(self, ip):
                return self._value

        t = Tournament(first=Fixed(True), second=Fixed(False))
        for _ in range(50):
            t.predict(0x40)
            t.update(0x40, True)
        assert t.predict(0x40) is True

    def test_storage_sums_components(self):
        a, b = Bimodal(log_entries=8), GShare(log_entries=8, history_bits=8)
        t = Tournament(first=a, second=b, log_chooser_entries=8)
        assert t.storage_bits() == a.storage_bits() + b.storage_bits() + 512

    def test_reset(self):
        t = Tournament()
        t.predict(1)
        t.update(1, True)
        t.reset()
        assert all(c == 0 for c in t._chooser)

    def test_validation(self):
        with pytest.raises(ValueError):
            Tournament(log_chooser_entries=0)


class TestOGehl:
    def test_learns_bias(self):
        assert drive(OGehl(), [(0x40, True)] * 500, score_after=50) > 0.99

    def test_learns_history_correlation(self):
        rng = random.Random(1)
        stream = []
        for _ in range(3000):
            a = rng.random() < 0.5
            stream.append((0x100, a))
            stream.append((0x200, a))
        p = OGehl()
        correct = total = 0
        for i, (ip, taken) in enumerate(stream):
            pred = p.predict(ip)
            if ip == 0x200 and i > 1500:
                total += 1
                correct += pred == taken
            p.update(ip, taken)
        assert correct / total > 0.9

    def test_learns_long_period(self):
        pattern = [True] * 20 + [False]
        stream = [(0x40, pattern[i % 21]) for i in range(6000)]
        assert drive(OGehl(), stream, score_after=2000) > 0.9

    def test_adaptive_threshold_moves(self):
        rng = random.Random(2)
        p = OGehl()
        start = p.threshold
        for _ in range(5000):
            p.predict(0x40)
            p.update(0x40, rng.random() < 0.5)
        assert p.threshold != start  # random stream exercises the TC loop

    def test_storage_bits(self):
        p = OGehl(num_tables=4, log_entries=8, counter_bits=5, max_history=100)
        assert p.storage_bits() == 4 * 256 * 5 + 100 + 16

    def test_reset(self):
        p = OGehl()
        p.predict(1)
        p.update(1, True)
        p.reset()
        assert p._history == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            OGehl(num_tables=1)
