"""Tests for the Wormhole multidimensional-branch predictor."""

import random

import pytest

from repro.predictors.tagescl import make_tage_sc_l
from repro.predictors.wormhole import Wormhole, WormholeAugmentedPredictor
from repro.predictors.simple import Bimodal


def multidimensional_stream(row, outer_iterations):
    """A branch scanned over a fixed pattern row every outer iteration —
    the if (A[j] > 0) case from the Wormhole paper."""
    stream = []
    for _ in range(outer_iterations):
        for bit in row:
            stream.append(bool(bit))
    return stream


def drive_wormhole(predictor, outcomes, ip=0x40, row_len=None, score_after=0):
    correct = total = 0
    for i, taken in enumerate(outcomes):
        pred = predictor.predict(ip)
        if i >= score_after:
            total += 1
            correct += pred == taken
        predictor.update(ip, taken)
        if row_len and (i + 1) % row_len == 0:
            predictor.note_row_boundary(ip)
    return correct / total


class TestWormhole:
    def test_learns_long_row_pattern(self):
        rng = random.Random(0)
        row = [rng.random() < 0.5 for _ in range(200)]
        outcomes = multidimensional_stream(row, 30)
        acc = drive_wormhole(
            Wormhole(), outcomes, row_len=200, score_after=200 * 6
        )
        assert acc > 0.99

    def test_beats_tage_on_noisy_multidimensional_rows(self):
        # A 200-bit repeating row with random branches interleaved: the
        # noise destroys the global-history signatures TAGE would use to
        # locate the row position, while the wormhole's per-branch row
        # storage is untouched — the 2-D structure argument of the paper.
        rng = random.Random(1)
        row = [rng.random() < 0.5 for _ in range(200)]

        def streams():
            for _rep in range(30):
                for bit in row:
                    yield (0x40, bool(bit))
                    for _ in range(3):
                        yield (0x1000 + rng.randrange(40) * 16,
                               rng.random() < 0.5)

        events = list(streams())

        def drive(p, with_rows):
            correct = total = 0
            seen_target = 0
            for ip, taken in events:
                pred = p.predict(ip)
                if ip == 0x40:
                    seen_target += 1
                    if seen_target > 1200:
                        total += 1
                        correct += pred == taken
                p.update(ip, taken)
                if with_rows and ip == 0x40 and seen_target % 200 == 0:
                    p.note_row_boundary(0x40)
            return correct / total

        wh = drive(Wormhole(), with_rows=True)
        tage = drive(make_tage_sc_l(8), with_rows=False)
        assert wh > 0.95
        assert wh > tage + 0.05

    def test_no_confidence_on_uncorrelated_rows(self):
        rng = random.Random(2)
        outcomes = [rng.random() < 0.5 for _ in range(4000)]
        p = Wormhole()
        confident = 0
        for i, taken in enumerate(outcomes):
            p.predict(0x40)
            confident += p.is_confident
            p.update(0x40, taken)
            if (i + 1) % 100 == 0:
                p.note_row_boundary(0x40)
        assert confident < 400  # rarely (if ever) confident on noise

    def test_adapts_to_changed_row(self):
        rng = random.Random(3)
        row_a = [rng.random() < 0.5 for _ in range(50)]
        row_b = [not b for b in row_a]
        outcomes = multidimensional_stream(row_a, 20) + multidimensional_stream(
            row_b, 25
        )
        acc = drive_wormhole(Wormhole(), outcomes, row_len=50,
                             score_after=50 * 30)
        assert acc > 0.95  # re-learned row_b after a confidence dip

    def test_storage_bits(self):
        p = Wormhole(log_entries=4, tag_bits=12)
        assert p.storage_bits() == 16 * (12 + 2 * 512 + 10 + 10 + 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            Wormhole(log_entries=0)


class TestWormholeAugmented:
    def test_overrides_only_when_confident(self):
        rng = random.Random(4)
        row = [rng.random() < 0.5 for _ in range(100)]
        aug = WormholeAugmentedPredictor(Bimodal())
        correct = total = 0
        outcomes = multidimensional_stream(row, 25)
        for i, taken in enumerate(outcomes):
            pred = aug.predict(0x40)
            if i >= 100 * 8:
                total += 1
                correct += pred == taken
            aug.update(0x40, taken)
            if (i + 1) % 100 == 0:
                aug.note_loop_exit()
        base_only = sum(row) / len(row)
        assert correct / total > max(base_only, 1 - base_only) + 0.1
        assert aug.overrides > 0

    def test_storage_sums(self):
        aug = WormholeAugmentedPredictor(Bimodal(log_entries=8))
        assert aug.storage_bits() == (
            aug.base.storage_bits() + aug.wormhole.storage_bits()
        )
