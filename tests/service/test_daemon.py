"""Lab daemon: protocol, concurrent-client bit-identity, batching,
single-flight dedupe, admission control, and graceful drain."""

import json
import socket
import threading

import pytest

from repro.config import ExperimentTier
from repro.experiments.lab import Lab
from repro.service import (
    BAD_REQUEST,
    NOT_FOUND,
    PROTOCOL_VERSION,
    SHED,
    ServiceError,
    simulation_digest,
)
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceConfig, ServiceThread

TIER = ExperimentTier(name="svctest", spec_inputs=1, spec_slices=1, lcf_slices=1)
INSTR = 20_000
SLICE = 10_000
PREDICTORS = ("bimodal", "gshare", "two-level-local", "tage-sc-l-8kb")


def _params(predictor, **overrides):
    params = {
        "workload": "game",
        "input": 0,
        "predictor": predictor,
        "instructions": INSTR,
        "slice_instructions": SLICE,
    }
    params.update(overrides)
    return params


@pytest.fixture(scope="module")
def daemon():
    """One warm daemon shared by the module's read-only tests."""
    shared_lab = Lab(tier=TIER, jobs=1)
    service_thread = ServiceThread(
        ServiceConfig(batch_window=0.05), lab=shared_lab
    )
    service_thread.start()
    yield service_thread
    service_thread.stop()
    shared_lab.close()


@pytest.fixture(scope="module")
def reference_digests():
    """Digests from a fresh, serial Lab — the bit-identity oracle."""
    lab = Lab(tier=TIER, jobs=1)
    digests = {
        predictor: simulation_digest(
            lab.simulate(
                "game", 0, predictor, instructions=INSTR, slice_instructions=SLICE
            )
        )
        for predictor in PREDICTORS
    }
    lab.close()
    return digests


class TestProtocol:
    def test_ping(self, daemon):
        with ServiceClient.connect(daemon.address) as client:
            result = client.call("ping")
        assert result["protocol"] == PROTOCOL_VERSION
        assert result["tier"] == "svctest"
        assert result["draining"] is False

    def test_unknown_method_is_404(self, daemon):
        with ServiceClient.connect(daemon.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.call("frobnicate")
        assert excinfo.value.code == NOT_FOUND

    def test_unknown_workload_and_predictor_are_404(self, daemon):
        with ServiceClient.connect(daemon.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.call("simulate", _params("bimodal", workload="nope"))
            assert excinfo.value.code == NOT_FOUND
            with pytest.raises(ServiceError) as excinfo:
                client.call("simulate", _params("perfectron"))
            assert excinfo.value.code == NOT_FOUND

    def test_bad_params_are_400(self, daemon):
        with ServiceClient.connect(daemon.address) as client:
            for params in (
                _params("bimodal", input="zero"),
                _params("bimodal", instructions=0),
                _params("bimodal", bogus=1),
                {"workload": ""},
            ):
                with pytest.raises(ServiceError) as excinfo:
                    client.call("simulate", params)
                assert excinfo.value.code == BAD_REQUEST

    def test_malformed_json_gets_error_response(self, daemon):
        host, port = daemon.address
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(b"this is not json\n")
            line = sock.makefile("rb").readline()
        message = json.loads(line)
        assert message["ok"] is False
        assert message["error"]["code"] == BAD_REQUEST

    def test_metrics_method(self, daemon, obs_enabled):
        with ServiceClient.connect(daemon.address) as client:
            client.call("ping")
            result = client.call("metrics")
        assert result["enabled"] is True
        assert result["counters"].get("service.request.ping", 0) >= 1


class TestBitIdentity:
    def test_simulate_matches_direct_lab(self, daemon, reference_digests):
        with ServiceClient.connect(daemon.address) as client:
            for predictor in PREDICTORS:
                result = client.call("simulate", _params(predictor))
                assert result["digest"] == reference_digests[predictor], predictor
                assert result["predictor"] == predictor

    def test_concurrent_clients_bit_identical(self, daemon, reference_digests):
        """Many clients, interleaved pipelines, every answer identical to a
        fresh serial Lab run."""
        clients = 6
        rounds = 3
        failures = []

        def hammer(slot):
            try:
                with ServiceClient.connect(daemon.address) as client:
                    for round_index in range(rounds):
                        # Rotate the order per client so batches interleave.
                        order = [
                            PREDICTORS[(slot + round_index + k) % len(PREDICTORS)]
                            for k in range(len(PREDICTORS))
                        ]
                        rids = [
                            (p, client.submit("simulate", _params(p))) for p in order
                        ]
                        for predictor, rid in rids:
                            result = client.result(rid)
                            if result["digest"] != reference_digests[predictor]:
                                failures.append((slot, predictor))
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append((slot, repr(exc)))

        threads = [
            threading.Thread(target=hammer, args=(slot,)) for slot in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures

    def test_h2p_stable_across_calls(self, daemon):
        with ServiceClient.connect(daemon.address) as client:
            first = client.call("h2p", _params("tage-sc-l-8kb"))
            second = client.call("h2p", _params("tage-sc-l-8kb"))
        assert first == second
        assert first["slices"] == 2

    def test_staticcheck_and_table1_cell(self, daemon):
        with ServiceClient.connect(daemon.address) as client:
            report = client.call("staticcheck", {"workload": "game"})
            assert report["footprint"]["conditional_branches"] > 0
            cell = client.call(
                "table1_cell", {"benchmark": "605.mcf_s", "with_phases": False}
            )
        assert cell["benchmark"] == "605.mcf_s"
        assert 0.0 < cell["avg_accuracy"] <= 1.0


class TestCoalescingAndDedupe:
    def test_pipelined_burst_coalesces_into_one_batch(self, daemon, obs_enabled):
        """Distinct predictors of one trace, pipelined, share a dispatch
        cycle and ride one simulate_batch call."""
        with ServiceClient.connect(daemon.address) as client:
            rids = [
                client.submit("simulate", _params(p, instructions=INSTR + 4_000))
                for p in PREDICTORS
            ]
            results = [client.result(rid) for rid in rids]
        assert len({r["digest"] for r in results}) == len(PREDICTORS)
        assert obs_enabled.counters_dict().get("service.batch.coalesced", 0) >= 1

    def test_identical_inflight_requests_dedupe(self, daemon, obs_enabled):
        """The same request pipelined twice computes once; the second
        response joins the first's flight."""
        params = _params("tage-sc-l-8kb", instructions=INSTR + 8_000)
        with ServiceClient.connect(daemon.address) as client:
            first = client.submit("simulate", params)
            second = client.submit("simulate", params)
            results = [client.result(first), client.result(second)]
        assert results[0]["digest"] == results[1]["digest"]
        assert obs_enabled.counters_dict().get("service.singleflight", 0) >= 1


class TestAdmissionControl:
    def test_overload_sheds_with_503(self, obs_enabled):
        """A one-deep queue with a one-wide dispatcher sheds a pipelined
        burst of cold, slow requests instead of queueing without bound."""
        lab = Lab(tier=TIER, jobs=1)
        config = ServiceConfig(
            queue_limit=1, max_batch=1, batch_window=0.0, threads=1
        )
        with ServiceThread(config, lab=lab) as service_thread:
            with ServiceClient.connect(service_thread.address) as client:
                rids = [
                    client.submit(
                        "simulate",
                        _params("tage-sc-l-8kb", instructions=30_000 + 1_000 * i),
                    )
                    for i in range(8)
                ]
                outcomes = []
                for rid in rids:
                    try:
                        client.result(rid)
                        outcomes.append("ok")
                    except ServiceError as exc:
                        assert exc.code == SHED
                        outcomes.append("shed")
        lab.close()
        assert "ok" in outcomes
        assert "shed" in outcomes
        assert obs_enabled.counters_dict().get("service.shed", 0) >= 1


class TestDrain:
    def test_shutdown_method_drains_and_stops(self):
        lab = Lab(tier=TIER, jobs=1)
        service_thread = ServiceThread(ServiceConfig(), lab=lab)
        service_thread.start()
        address = service_thread.address
        with ServiceClient.connect(address) as client:
            # In-flight work admitted before the shutdown still completes.
            rid = client.submit("simulate", _params("bimodal"))
            assert client.call("shutdown")["draining"] is True
            assert client.result(rid)["predictor"] == "bimodal"
        service_thread.stop()
        lab.close()
        assert service_thread.service._stopped.is_set()
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=2)

    def test_sigterm_drains_daemon_subprocess(self):
        """The real daemon process: serve, SIGTERM, exit 0, socket closed."""
        from repro.service.loadtest import spawn_daemon, stop_daemon

        proc, address = spawn_daemon()
        try:
            with ServiceClient.connect(address) as client:
                assert client.call("ping")["protocol"] == PROTOCOL_VERSION
                result = client.call("simulate", _params("bimodal"))
                assert result["predictor"] == "bimodal"
        finally:
            exit_code = stop_daemon(proc)
        assert exit_code == 0
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=2)

    def test_requests_after_drain_are_shed(self):
        lab = Lab(tier=TIER, jobs=1)
        service_thread = ServiceThread(ServiceConfig(), lab=lab)
        service_thread.start()
        with ServiceClient.connect(service_thread.address) as client:
            client.call("shutdown")
            with pytest.raises((ServiceError, ConnectionError)) as excinfo:
                client.call("simulate", _params("bimodal"))
            if isinstance(excinfo.value, ServiceError):
                assert excinfo.value.code == SHED
        service_thread.stop()
        lab.close()
