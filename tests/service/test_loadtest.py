"""Load harness: measurement plumbing and the bench-document contract."""

import json

import pytest

from repro.bench import validate_bench_doc
from repro.config import ExperimentTier
from repro.experiments.lab import Lab
from repro.service.daemon import ServiceConfig, ServiceThread
from repro.service.loadtest import LoadResult, build_doc, default_mix, run_load

TIER = ExperimentTier(name="lttest", spec_inputs=1, spec_slices=1, lcf_slices=1)


@pytest.fixture(scope="module")
def warm_daemon():
    lab = Lab(tier=TIER, jobs=1)
    with ServiceThread(ServiceConfig(), lab=lab) as service_thread:
        yield service_thread
    lab.close()


def test_run_load_collects_latencies(warm_daemon):
    mix = default_mix(instructions=20_000, slice_instructions=10_000)
    result = run_load(warm_daemon.address, clients=2, requests_per_client=4, mix=mix)
    assert result.errors == 0
    assert result.requests == 8
    assert len(result.latencies_ms) == 8
    assert result.rps > 0
    assert result.percentile_ms(0.99) >= result.percentile_ms(0.50) > 0


def test_build_doc_is_valid_bench_schema(tmp_path):
    results = [
        LoadResult(clients=1, requests=10, seconds=1.0,
                   latencies_ms=[5.0] * 10, errors=0),
        LoadResult(clients=8, requests=80, seconds=2.0,
                   latencies_ms=[9.0] * 80, errors=0),
    ]
    doc = build_doc(results, mix_size=5, requests_per_client=10, instructions=20_000)
    validate_bench_doc(doc)  # raises on schema violations
    out = tmp_path / "BENCH_service.json"
    out.write_text(json.dumps(doc))
    assert json.loads(out.read_text())["schema"] == doc["schema"]
    speedup = doc["metrics"]["service.speedup.c8_over_c1"]
    assert speedup["direction"] == "higher"
    assert speedup["value"] == pytest.approx(4.0)  # 40 rps over 10 rps
    # Absolute numbers never participate in the baseline comparison.
    assert doc["metrics"]["service.rps.c1"]["direction"] == "info"
    assert doc["metrics"]["service.p99_ms.c8"]["direction"] == "info"


def test_percentile_edges():
    result = LoadResult(
        clients=1, requests=4, seconds=1.0,
        latencies_ms=[1.0, 2.0, 3.0, 100.0], errors=0,
    )
    assert result.percentile_ms(0.0) == 1.0
    assert result.percentile_ms(1.0) == 100.0
    empty = LoadResult(clients=1, requests=0, seconds=0.0, latencies_ms=[], errors=0)
    assert empty.percentile_ms(0.99) == 0.0
    assert empty.rps == 0.0
