"""CFG construction, edge policies, and reachability."""

from repro.isa.instructions import (
    Br,
    Call,
    Cond,
    Halt,
    Imm,
    Jmp,
    Nop,
    Ret,
    Switch,
)
from repro.isa.program import ProgramBuilder
from repro.staticcheck.cfg import build_cfg, unreachable_blocks


def interproc_program():
    """entry -> Br(a, b); a -> Call(sub, ret_to=join); b -> Jmp join;
    join -> Switch(a, a, b); sub -> Ret; dead block unreached."""
    b = ProgramBuilder("cfgtest")
    entry = b.block("entry")
    a = b.block("a")
    bb = b.block("b")
    join = b.block("join")
    sub = b.block("sub")
    dead = b.block("dead")

    entry.instructions = [Imm(1, 0), Imm(2, 1)]
    entry.terminator = Br(Cond.EQ, 1, 2, "a", "b")
    a.instructions = [Nop()]
    a.terminator = Call("sub", "join")
    bb.instructions = [Nop()]
    bb.terminator = Jmp("join")
    join.instructions = [Imm(3, 0)]
    join.terminator = Switch(3, ("a", "a", "b"))
    sub.instructions = [Nop()]
    sub.terminator = Ret()
    dead.instructions = [Nop()]
    dead.terminator = Halt()
    return b.build()


class TestEdgePolicies:
    def test_br_edges(self):
        cfg = build_cfg(interproc_program())
        assert cfg.succs["entry"] == ("a", "b")

    def test_call_targets_callee_only(self):
        cfg = build_cfg(interproc_program())
        # The ret_to block is reached through the callee's Ret, not by a
        # fall-through edge.
        assert cfg.succs["a"] == ("sub",)

    def test_ret_resolves_to_all_ret_sites_plus_entry(self):
        cfg = build_cfg(interproc_program())
        assert cfg.succs["sub"] == ("join", "entry")

    def test_switch_targets_dedupe(self):
        cfg = build_cfg(interproc_program())
        assert cfg.succs["join"] == ("a", "b")

    def test_halt_is_terminal(self):
        cfg = build_cfg(interproc_program())
        assert cfg.succs["dead"] == ()

    def test_preds_mirror_succs(self):
        cfg = build_cfg(interproc_program())
        for label, targets in cfg.succs.items():
            for target in targets:
                assert label in cfg.preds[target]


class TestReachability:
    def test_unreachable_block_detected(self):
        prog = interproc_program()
        cfg = build_cfg(prog)
        assert "dead" not in cfg.reachable
        assert unreachable_blocks(prog, cfg) == ["dead"]

    def test_rpo_starts_at_entry_and_covers_reachable(self):
        cfg = build_cfg(interproc_program())
        assert cfg.rpo[0] == "entry"
        assert set(cfg.rpo) == set(cfg.reachable)

    def test_rpo_orders_predecessors_first_on_dag_edges(self):
        cfg = build_cfg(interproc_program())
        index = cfg.rpo_index
        assert index["entry"] < index["a"]
        assert index["entry"] < index["b"]

    def test_scales_to_large_programs(self):
        # A long Jmp chain would overflow a recursive DFS.
        b = ProgramBuilder("chain")
        n = 5000
        for i in range(n):
            blk = b.block(f"n{i}")
            blk.instructions = [Nop()]
            blk.terminator = Jmp(f"n{i + 1}") if i < n - 1 else Halt()
        cfg = build_cfg(b.build())
        assert len(cfg.reachable) == n
