"""Branch classification and the static footprint."""

from repro.isa.instructions import (
    Alu,
    AluImm,
    AluOp,
    ArrayBase,
    Br,
    Cond,
    Halt,
    Imm,
    Jmp,
    Load,
    Nop,
)
from repro.isa.program import ProgramBuilder
from repro.staticcheck.classify import BranchClass, branch_class_by_ip
from repro.staticcheck.engine import analyze_program


def classes_by_block(analysis):
    return {p.block: p.branch_class for p in analysis.branches}


def three_class_program():
    """A data-steered loop, a guard, and a clean counted self-loop."""
    b = ProgramBuilder("classes")
    b.data("d", list(range(16)))
    e = b.block("entry")
    e.instructions = [ArrayBase(1, "d"), Imm(2, 0), Imm(3, 10), Imm(4, 1)]
    e.terminator = Jmp("loop")

    loop = b.block("loop")  # condition reads a loaded value -> DATA
    loop.instructions = [Alu(AluOp.ADD, 5, 1, 2), Load(6, 5), Imm(7, 8)]
    loop.terminator = Br(Cond.LT, 6, 7, "hit", "miss")
    hit = b.block("hit")
    hit.instructions = [AluImm(AluOp.ADD, 9, 9, 1)]
    hit.terminator = Jmp("tail")
    miss = b.block("miss")
    miss.instructions = [Nop()]
    miss.terminator = Jmp("tail")

    tail = b.block("tail")  # back edge; loop body contains the DATA branch
    tail.instructions = [AluImm(AluOp.ADD, 2, 2, 1)]
    tail.terminator = Br(Cond.LT, 2, 3, "loop", "guard")

    guard = b.block("guard")  # forward branch over constant state
    guard.instructions = [Nop()]
    guard.terminator = Br(Cond.EQ, 4, 3, "g1", "g2")
    g1 = b.block("g1")
    g1.instructions = [Nop()]
    g1.terminator = Jmp("counted")
    g2 = b.block("g2")
    g2.instructions = [Nop()]
    g2.terminator = Jmp("counted")

    counted = b.block("counted")  # pure counted self-loop, clean body
    counted.instructions = [AluImm(AluOp.ADD, 8, 8, 1)]
    counted.terminator = Br(Cond.LT, 8, 3, "counted", "done")

    done = b.block("done")
    done.terminator = Halt()
    return b.build()


class TestClassification:
    def test_three_classes(self):
        analysis = analyze_program(three_class_program())
        by_block = classes_by_block(analysis)
        assert by_block["loop"] is BranchClass.DATA
        assert by_block["guard"] is BranchClass.GUARD
        assert by_block["counted"] is BranchClass.LOOP

    def test_loop_with_data_steered_body_is_data(self):
        # tail's condition is a clean counter, but its loop body contains
        # the data branch: the exit predicts through a data-shaped history.
        analysis = analyze_program(three_class_program())
        assert classes_by_block(analysis)["tail"] is BranchClass.DATA

    def test_implicitly_tainted_loop_bound_is_data(self):
        # The H2P kernels' noise loop: trip count selected by a
        # data-dependent diamond, so the spin branch must classify DATA
        # even though its operands only ever see Imm constants.
        b = ProgramBuilder("noise")
        b.data("d", [0, 1, 2, 3])
        e = b.block("entry")
        e.instructions = [ArrayBase(1, "d"), Load(2, 1), Imm(3, 2), Imm(8, 0)]
        e.terminator = Br(Cond.LT, 2, 3, "small", "big")
        small = b.block("small")
        small.instructions = [Imm(7, 2)]
        small.terminator = Jmp("spin")
        big = b.block("big")
        big.instructions = [Imm(7, 5)]
        big.terminator = Jmp("spin")
        spin = b.block("spin")
        spin.instructions = [AluImm(AluOp.ADD, 8, 8, 1)]
        spin.terminator = Br(Cond.LT, 8, 7, "spin", "done")
        done = b.block("done")
        done.terminator = Halt()
        analysis = analyze_program(b.build())
        assert classes_by_block(analysis)["spin"] is BranchClass.DATA

    def test_profiles_sorted_by_ip(self):
        analysis = analyze_program(three_class_program())
        ips = [p.ip for p in analysis.branches]
        assert ips == sorted(ips)

    def test_branch_class_by_ip_roundtrip(self):
        analysis = analyze_program(three_class_program())
        index = branch_class_by_ip(list(analysis.branches))
        for p in analysis.branches:
            assert index[p.ip] == (p.block, p.branch_class)


class TestFootprint:
    def test_counts(self):
        analysis = analyze_program(three_class_program())
        fp = analysis.footprint
        assert fp.conditional_branches == 4
        assert fp.loop_branches == 1
        assert fp.data_branches == 2
        assert fp.guard_branches == 1
        assert fp.blocks == 10
        assert fp.reachable_blocks == 10
        assert fp.natural_loops == 2
        assert fp.data_arrays == 1

    def test_as_dict_keys_are_stable(self):
        fp = analyze_program(three_class_program()).footprint
        assert set(fp.as_dict()) == {
            "blocks",
            "reachable_blocks",
            "conditional_branches",
            "loop_branches",
            "data_branches",
            "guard_branches",
            "switches",
            "calls",
            "natural_loops",
            "data_arrays",
            "const_branches",
            "loop_exit_branches",
            "biased_branches",
            "correlated_branches",
            "h2p_candidate_branches",
            "rare_branches",
        }

    def test_verdict_counts_partition_branches(self):
        fp = analyze_program(three_class_program()).footprint
        verdict_total = (
            fp.const_branches
            + fp.loop_exit_branches
            + fp.biased_branches
            + fp.correlated_branches
            + fp.h2p_candidate_branches
            + fp.rare_branches
        )
        assert verdict_total == fp.conditional_branches
