"""CLI behaviour: exit codes, report output, and contract emission."""

import json

import pytest

from repro.staticcheck.cli import main
from repro.staticcheck.diagnostics import REPORT_SCHEMA_VERSION, load_report
from repro.staticcheck.fixtures import NEGATIVE_FIXTURE_ERROR_RULES


class TestExitCodes:
    def test_clean_workloads_exit_zero(self, capsys):
        assert main(["605.mcf_s", "625.x264_s"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_negative_fixture_exits_nonzero(self, capsys):
        assert main(["--fixture", "negative"]) == 1
        out = capsys.readouterr().out
        for rule_id in NEGATIVE_FIXTURE_ERROR_RULES:
            assert rule_id in out

    def test_unknown_workload_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["no-such-workload"])
        assert excinfo.value.code == 2

    def test_no_selection_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2


class TestListAndReport:
    def test_list_prints_registered_names(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert "605.mcf_s" in out
        assert "game" in out

    def test_report_out_writes_schema_json(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["605.mcf_s", "--report-out", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["schema"] == REPORT_SCHEMA_VERSION
        assert doc["errors"] == 0
        assert "605.mcf_s" in doc["footprints"]
        fp = doc["footprints"]["605.mcf_s"]
        assert fp["conditional_branches"] == (
            fp["loop_branches"] + fp["data_branches"] + fp["guard_branches"]
        )

    def test_report_out_records_fixture_diagnostics(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["--fixture", "negative", "--report-out", str(path)]) == 1
        doc = json.loads(path.read_text())
        assert doc["errors"] == 2
        assert {d["rule_id"] for d in doc["diagnostics"]} >= set(
            NEGATIVE_FIXTURE_ERROR_RULES
        )


class TestEmitContracts:
    def test_emitted_stanza_matches_registered_contract(self, capsys):
        assert main(["--emit-contracts", "605.mcf_s"]) == 0
        out = capsys.readouterr().out
        from repro.staticcheck.contracts import StaticContract
        from repro.workloads import WORKLOAD_CONTRACTS

        parsed = eval(  # noqa: S307 - test-only
            out.partition("=")[2], {"StaticContract": StaticContract}
        )
        assert parsed["605.mcf_s"] == WORKLOAD_CONTRACTS["605.mcf_s"]


class TestPredictabilityMode:
    def test_report_carries_per_workload_verdicts(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["605.mcf_s", "--predictability", "--report-out", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["schema"] == REPORT_SCHEMA_VERSION
        section = doc["predictability"]["605.mcf_s"]
        branches = section["branches"]
        assert len(branches) == (
            doc["footprints"]["605.mcf_s"]["conditional_branches"]
        )
        for entry in branches:
            assert {"block", "ip", "verdict", "detail"} <= set(entry)

    def test_summary_line_prints_verdict_counts(self, capsys):
        assert main(["605.mcf_s", "--predictability"]) == 0
        out = capsys.readouterr().out
        assert "predictability 605.mcf_s:" in out

    def test_without_flag_report_omits_branch_detail(self, tmp_path, capsys):
        # Verdict *counts* always ride along (the footprint computes them);
        # the per-branch detail list is predictability-mode only.
        path = tmp_path / "report.json"
        assert main(["605.mcf_s", "--report-out", str(path)]) == 0
        section = json.loads(path.read_text())["predictability"]["605.mcf_s"]
        assert "branches" not in section
        assert section["h2p_candidate_branches"] >= 0


class TestLoadReport:
    def test_roundtrip_v2(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["605.mcf_s", "--predictability", "--report-out", str(path)]) == 0
        doc = load_report(str(path))
        assert doc["schema"] == REPORT_SCHEMA_VERSION
        assert doc["errors"] == 0
        assert "605.mcf_s" in doc["predictability"]

    def test_v1_documents_normalize_to_v2_shape(self, tmp_path):
        path = tmp_path / "v1.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro.staticcheck/v1",
                    "errors": 0,
                    "warnings": 1,
                    "diagnostics": [],
                    "footprints": {},
                }
            )
        )
        doc = load_report(str(path))
        assert doc["infos"] == 0
        assert doc["predictability"] == {}
        assert doc["warnings"] == 1

    def test_unknown_schema_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.staticcheck/v9"}))
        with pytest.raises(ValueError, match="unsupported staticcheck report"):
            load_report(str(path))
