"""Static-footprint contracts: bounds checking and generation."""

import pytest

from repro.staticcheck.classify import StaticFootprint
from repro.staticcheck.contracts import (
    DEFAULT_CONTRACT_KEYS,
    StaticContract,
    contract_from_footprint,
    render_contract,
)


def footprint(**overrides):
    base = dict(
        blocks=10,
        reachable_blocks=10,
        conditional_branches=4,
        loop_branches=1,
        data_branches=2,
        guard_branches=1,
        switches=0,
        calls=0,
        natural_loops=2,
        data_arrays=1,
    )
    base.update(overrides)
    return StaticFootprint(**base)


class TestStaticContract:
    def test_satisfied(self):
        contract = contract_from_footprint("w", footprint())
        assert contract.violations(footprint()) == []

    def test_violation_messages(self):
        contract = contract_from_footprint("w", footprint())
        msgs = contract.violations(footprint(data_branches=3, guard_branches=0))
        assert msgs == [
            "data_branches is 3, contract expects 2",
            "guard_branches is 0, contract expects 1",
        ]

    def test_range_bounds(self):
        contract = StaticContract("w", {"blocks": (8, 12)})
        assert contract.violations(footprint()) == []
        assert contract.violations(footprint(blocks=13)) == [
            "blocks is 13, contract expects 8..12"
        ]

    def test_unknown_key_reported(self):
        contract = StaticContract("w", {"nonsense": (0, 0)})
        assert contract.violations(footprint()) == [
            "contract references unknown footprint key 'nonsense'"
        ]

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="lo 3 > hi 1"):
            StaticContract("w", {"blocks": (3, 1)})

    def test_default_keys_pinned_exactly(self):
        contract = contract_from_footprint("w", footprint())
        assert set(contract.bounds) == set(DEFAULT_CONTRACT_KEYS)
        actual = footprint().as_dict()
        for key, (lo, hi) in contract.bounds.items():
            assert lo == hi == actual[key]

    def test_render_is_valid_registry_stanza(self):
        text = render_contract(contract_from_footprint("w", footprint()))
        namespace = {"StaticContract": StaticContract}
        parsed = eval("{" + text + "}", namespace)  # noqa: S307 - test-only
        assert parsed["w"].bounds["blocks"] == (10, 10)


class TestRegisteredContracts:
    def test_every_workload_has_a_contract(self):
        from repro.workloads import WORKLOAD_CONTRACTS, WORKLOADS_BY_NAME

        assert set(WORKLOAD_CONTRACTS) == set(WORKLOADS_BY_NAME)

    def test_contracts_pin_default_keys(self):
        from repro.workloads import WORKLOAD_CONTRACTS

        for name, contract in WORKLOAD_CONTRACTS.items():
            assert contract.workload == name
            assert set(contract.bounds) == set(DEFAULT_CONTRACT_KEYS)
