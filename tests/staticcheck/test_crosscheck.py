"""Acceptance cross-check: static classification vs. dynamic findings.

The issue's acceptance criterion: every dynamic H2P IP found on the quick
tier must be classified *data-dependent* by the static analyzer, and every
dynamically observed branch IP must exist in the static CFG.
"""

import pytest

from repro.experiments.staticcheck_check import (
    compute_staticcheck_report,
    crosscheck_lcf_populations,
    crosscheck_specint_h2ps,
)


@pytest.fixture(scope="module")
def report(lab):
    return compute_staticcheck_report(lab)


class TestStaticDynamicAgreement:
    def test_every_h2p_ip_is_statically_data_dependent(self, lab):
        for check in crosscheck_specint_h2ps(lab):
            assert check.ok, "\n".join(check.mismatches)
            # The screen finds H2Ps on the quick tier; an empty set here
            # would make the agreement vacuous.
            assert check.dynamic_ips > 0, f"{check.benchmark}: no H2Ps screened"

    def test_dynamic_branch_populations_subset_of_static(self, lab):
        for check in crosscheck_lcf_populations(lab):
            assert check.ok, "\n".join(check.mismatches)
            assert check.dynamic_ips > 0

    def test_report_aggregates_lint_and_checks(self, report):
        assert report.ok
        assert not report.lint.has_errors()
        categories = {c.category for c in report.checks}
        assert categories == {"specint", "lcf"}

    def test_render_states_agreement(self, report):
        text = report.render()
        assert "staticcheck and dynamic measurements agree" in text
