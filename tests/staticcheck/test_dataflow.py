"""Must-assigned / use-before-def and the may-taint analyses."""

from repro.isa.instructions import (
    Alu,
    AluImm,
    AluOp,
    ArrayBase,
    Br,
    Cond,
    Halt,
    Imm,
    Jmp,
    Load,
    Nop,
    Rand,
    Store,
)
from repro.isa.program import ProgramBuilder
from repro.staticcheck.cfg import build_cfg
from repro.staticcheck.dataflow import (
    compute_must_assigned,
    compute_taint,
    suspicious_memory_ops,
    taint_at_terminator,
)
from repro.staticcheck.dominators import compute_idoms


def build(blocks_fn):
    b = ProgramBuilder("dftest")
    blocks_fn(b)
    prog = b.build()
    return prog, build_cfg(prog)


class TestMustAssigned:
    def test_use_before_def_detected(self):
        def blocks(b):
            e = b.block("entry")
            e.instructions = [Imm(1, 2), Alu(AluOp.ADD, 3, 1, 9)]
            e.terminator = Halt()

        prog, cfg = build(blocks)
        must = compute_must_assigned(prog, cfg)
        assert [(u.block, u.slot, u.register) for u in must.uses_before_def] == [
            ("entry", 1, 9)
        ]

    def test_one_armed_definition_is_still_use_before_def(self):
        # r5 is defined on the left arm only; the join's read must flag.
        def blocks(b):
            e = b.block("entry")
            e.instructions = [Imm(1, 0), Imm(2, 1)]
            e.terminator = Br(Cond.EQ, 1, 2, "left", "right")
            left = b.block("left")
            left.instructions = [Imm(5, 7)]
            left.terminator = Jmp("join")
            right = b.block("right")
            right.instructions = [Nop()]
            right.terminator = Jmp("join")
            join = b.block("join")
            join.instructions = [AluImm(AluOp.ADD, 6, 5, 1)]
            join.terminator = Halt()

        prog, cfg = build(blocks)
        must = compute_must_assigned(prog, cfg)
        assert [(u.block, u.register) for u in must.uses_before_def] == [("join", 5)]

    def test_self_accumulator_exempt(self):
        def blocks(b):
            e = b.block("entry")
            e.instructions = [AluImm(AluOp.ADD, 22, 22, 1)]
            e.terminator = Halt()

        prog, cfg = build(blocks)
        assert compute_must_assigned(prog, cfg).uses_before_def == ()

    def test_terminator_read_flagged_with_slot_minus_one(self):
        def blocks(b):
            e = b.block("entry")
            e.instructions = [Imm(1, 0)]
            e.terminator = Br(Cond.LT, 1, 2, "entry", "entry")

        prog, cfg = build(blocks)
        finds = compute_must_assigned(prog, cfg).uses_before_def
        assert [(u.block, u.slot, u.register) for u in finds] == [("entry", -1, 2)]


class TestExplicitTaint:
    def test_load_and_rand_are_data_sources(self):
        def blocks(b):
            b.data("d", [1, 2, 3])
            e = b.block("entry")
            e.instructions = [
                ArrayBase(1, "d"),
                Load(2, 1),
                Rand(3, 0, 4),
                Alu(AluOp.ADD, 4, 2, 3),
            ]
            e.terminator = Halt()

        prog, cfg = build(blocks)
        taint = compute_taint(prog, cfg)
        data, addr = taint_at_terminator(prog, taint, "entry")
        assert data & (1 << 2) and data & (1 << 3) and data & (1 << 4)
        assert addr & (1 << 1) and not data & (1 << 1)

    def test_imm_kills_taint(self):
        def blocks(b):
            b.data("d", [1])
            e = b.block("entry")
            e.instructions = [ArrayBase(1, "d"), Load(2, 1), Imm(2, 0)]
            e.terminator = Halt()

        prog, cfg = build(blocks)
        data, _addr = taint_at_terminator(prog, compute_taint(prog, cfg), "entry")
        assert not data & (1 << 2)

    def test_taint_unions_at_joins(self):
        def blocks(b):
            b.data("d", [1])
            e = b.block("entry")
            e.instructions = [ArrayBase(1, "d"), Imm(2, 0), Imm(3, 1)]
            e.terminator = Br(Cond.EQ, 2, 3, "left", "right")
            left = b.block("left")
            left.instructions = [Load(5, 1)]
            left.terminator = Jmp("join")
            right = b.block("right")
            right.instructions = [Imm(5, 9)]
            right.terminator = Jmp("join")
            join = b.block("join")
            join.instructions = [Nop()]
            join.terminator = Halt()

        prog, cfg = build(blocks)
        taint = compute_taint(prog, cfg)
        # May-analysis: the DATA definition on one arm survives the join.
        assert taint.data_in["join"] & (1 << 5)

    def test_suspicious_memory_ops(self):
        def blocks(b):
            b.data("d", [1])
            e = b.block("entry")
            e.instructions = [ArrayBase(1, "d"), Imm(2, 64), Load(3, 2), Store(3, 1)]
            e.terminator = Halt()

        prog, cfg = build(blocks)
        finds = suspicious_memory_ops(prog, cfg, compute_taint(prog, cfg))
        # Only the load through the constant base is suspicious.
        assert finds == [("entry", 2, 2)]


def arm_select_program():
    """A DATA-conditioned diamond whose arms Imm-select r7; the loop bound
    of a later self-loop reads r7 — the H2P kernels' noise-loop shape."""
    b = ProgramBuilder("implicit")
    b.data("d", [1, 2, 3, 4])
    e = b.block("entry")
    e.instructions = [ArrayBase(1, "d"), Load(2, 1), Imm(3, 2)]
    e.terminator = Br(Cond.LT, 2, 3, "small", "big")
    small = b.block("small")
    small.instructions = [Imm(7, 2)]
    small.terminator = Jmp("join")
    big = b.block("big")
    big.instructions = [Imm(7, 5)]
    big.terminator = Jmp("join")
    join = b.block("join")
    join.instructions = [Imm(8, 0), Imm(9, 77)]
    join.terminator = Jmp("spin")
    spin = b.block("spin")
    spin.instructions = [AluImm(AluOp.ADD, 8, 8, 1)]
    spin.terminator = Br(Cond.LT, 8, 7, "spin", "done")
    done = b.block("done")
    done.terminator = Halt()
    return b.build()


class TestImplicitTaint:
    def test_arm_writes_pick_up_data_taint(self):
        prog = arm_select_program()
        cfg = build_cfg(prog)
        taint = compute_taint(prog, cfg, compute_idoms(cfg))
        assert taint.control == frozenset({"small", "big"})
        # r7 is a plain Imm constant, but *which* constant depends on data.
        assert taint.data_in["join"] & (1 << 7)
        data, _addr = taint_at_terminator(prog, taint, "spin")
        assert data & (1 << 7)

    def test_join_writes_stay_clean(self):
        prog = arm_select_program()
        cfg = build_cfg(prog)
        taint = compute_taint(prog, cfg, compute_idoms(cfg))
        # The merge block post-dominates the branch: not control-dependent.
        data, _addr = taint_at_terminator(prog, taint, "join")
        assert not data & (1 << 9)

    def test_without_idoms_no_implicit_flow(self):
        prog = arm_select_program()
        cfg = build_cfg(prog)
        taint = compute_taint(prog, cfg)
        assert taint.control == frozenset()
        assert not taint.data_in["join"] & (1 << 7)

    def test_untainted_diamond_creates_no_region(self):
        b = ProgramBuilder("clean")
        e = b.block("entry")
        e.instructions = [Imm(1, 0), Imm(2, 1)]
        e.terminator = Br(Cond.EQ, 1, 2, "left", "right")
        left = b.block("left")
        left.instructions = [Imm(5, 1)]
        left.terminator = Jmp("join")
        right = b.block("right")
        right.instructions = [Imm(5, 2)]
        right.terminator = Jmp("join")
        join = b.block("join")
        join.terminator = Halt()
        prog = b.build()
        cfg = build_cfg(prog)
        taint = compute_taint(prog, cfg, compute_idoms(cfg))
        assert taint.control == frozenset()
        assert not taint.data_in["join"] & (1 << 5)
