"""Dominator tree, back edges, and natural loops."""

from repro.isa.instructions import AluImm, AluOp, Br, Cond, Halt, Imm, Jmp, Nop
from repro.isa.program import ProgramBuilder
from repro.staticcheck.cfg import build_cfg
from repro.staticcheck.dominators import (
    back_edges,
    compute_idoms,
    dominates,
    loop_body,
    natural_loops,
)


def diamond_loop_program():
    """entry -> loop { head -> (left|right) -> tail -> head } -> done."""
    b = ProgramBuilder("domtest")
    entry = b.block("entry")
    head = b.block("head")
    left = b.block("left")
    right = b.block("right")
    tail = b.block("tail")
    done = b.block("done")

    entry.instructions = [Imm(1, 0), Imm(2, 10), Imm(3, 1)]
    entry.terminator = Jmp("head")
    head.instructions = [AluImm(AluOp.AND, 4, 1, 1)]
    head.terminator = Br(Cond.EQ, 4, 3, "left", "right")
    left.instructions = [Nop()]
    left.terminator = Jmp("tail")
    right.instructions = [Nop()]
    right.terminator = Jmp("tail")
    tail.instructions = [AluImm(AluOp.ADD, 1, 1, 1)]
    tail.terminator = Br(Cond.LT, 1, 2, "head", "done")
    done.terminator = Halt()
    return b.build()


class TestDominators:
    def test_idoms(self):
        cfg = build_cfg(diamond_loop_program())
        idoms = compute_idoms(cfg)
        assert idoms["entry"] is None
        assert idoms["head"] == "entry"
        assert idoms["left"] == "head"
        assert idoms["right"] == "head"
        # The join is dominated by the branch block, not by either arm.
        assert idoms["tail"] == "head"
        assert idoms["done"] == "tail"

    def test_dominates_is_reflexive_and_transitive(self):
        cfg = build_cfg(diamond_loop_program())
        idoms = compute_idoms(cfg)
        assert dominates(idoms, "tail", "tail")
        assert dominates(idoms, "entry", "done")
        assert not dominates(idoms, "left", "tail")


class TestLoops:
    def test_back_edge_found(self):
        cfg = build_cfg(diamond_loop_program())
        edges = back_edges(cfg, compute_idoms(cfg))
        assert edges == [("tail", "head")]

    def test_natural_loop_body(self):
        cfg = build_cfg(diamond_loop_program())
        edges = back_edges(cfg, compute_idoms(cfg))
        loops = natural_loops(cfg, edges)
        assert len(loops) == 1
        assert loops[0].header == "head"
        assert loops[0].body == frozenset({"head", "left", "right", "tail"})

    def test_loop_body_single_edge_matches_natural_loop(self):
        cfg = build_cfg(diamond_loop_program())
        body = loop_body(cfg, "tail", "head")
        assert body == frozenset({"head", "left", "right", "tail"})

    def test_self_loop(self):
        b = ProgramBuilder("selfloop")
        entry = b.block("entry")
        spin = b.block("spin")
        done = b.block("done")
        entry.instructions = [Imm(1, 0), Imm(2, 5)]
        entry.terminator = Jmp("spin")
        spin.instructions = [AluImm(AluOp.ADD, 1, 1, 1)]
        spin.terminator = Br(Cond.LT, 1, 2, "spin", "done")
        done.terminator = Halt()
        cfg = build_cfg(b.build())
        edges = back_edges(cfg, compute_idoms(cfg))
        assert edges == [("spin", "spin")]
        assert loop_body(cfg, "spin", "spin") == frozenset({"spin"})
