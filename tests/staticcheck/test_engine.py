"""Engine-level linting: diagnostics, contract rules, and obs wiring."""

import pytest

from repro.staticcheck.contracts import StaticContract
from repro.staticcheck.diagnostics import RULES, Severity
from repro.staticcheck.engine import lint_program, lint_registry, lint_workload
from repro.staticcheck.fixtures import (
    NEGATIVE_FIXTURE_ERROR_RULES,
    NEGATIVE_FIXTURE_WARNING_RULES,
    build_negative_fixture,
)
from repro.workloads import WORKLOADS_BY_NAME


class TestNegativeFixture:
    def test_expected_rules_fire(self):
        _analysis, diagnostics = lint_program(build_negative_fixture())
        fired = {d.rule_id for d in diagnostics}
        for rule_id in NEGATIVE_FIXTURE_ERROR_RULES:
            assert rule_id in fired
        for rule_id in NEGATIVE_FIXTURE_WARNING_RULES:
            assert rule_id in fired

    def test_severities_match_registry(self):
        _analysis, diagnostics = lint_program(build_negative_fixture())
        for d in diagnostics:
            assert d.severity is RULES[d.rule_id].severity


class TestLintWorkload:
    def test_clean_workload_with_contract(self):
        spec = WORKLOADS_BY_NAME["605.mcf_s"]
        from repro.workloads import WORKLOAD_CONTRACTS

        footprint, diagnostics = lint_workload(
            spec, WORKLOAD_CONTRACTS[spec.name], input_indices=[0]
        )
        assert footprint is not None
        assert diagnostics == []

    def test_missing_contract_warns_sc302(self):
        spec = WORKLOADS_BY_NAME["605.mcf_s"]
        _fp, diagnostics = lint_workload(spec, None, input_indices=[0])
        assert [d.rule_id for d in diagnostics] == ["SC302"]
        assert diagnostics[0].severity is Severity.WARNING

    def test_contract_violation_errors_sc301(self):
        spec = WORKLOADS_BY_NAME["605.mcf_s"]
        wrong = StaticContract(spec.name, {"blocks": (1, 1)})
        _fp, diagnostics = lint_workload(spec, wrong, input_indices=[0])
        assert [d.rule_id for d in diagnostics] == ["SC301"]
        assert diagnostics[0].severity is Severity.ERROR

    def test_footprint_invariant_across_inputs(self):
        # The cross-input H2P methodology requires input-invariant
        # structure; SC303 must not fire on a registered workload.
        spec = WORKLOADS_BY_NAME["625.x264_s"]
        _fp, diagnostics = lint_workload(
            spec, None, input_indices=range(spec.num_inputs)
        )
        assert [d.rule_id for d in diagnostics] == ["SC302"]


class TestLintRegistry:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown workloads"):
            lint_registry(["no-such-workload"])

    def test_subset_is_clean(self):
        report = lint_registry(["605.mcf_s", "625.x264_s"])
        assert not report.has_errors(strict=True)
        assert set(report.footprints) == {"605.mcf_s", "625.x264_s"}
        assert report.programs_checked == sum(
            WORKLOADS_BY_NAME[n].num_inputs for n in report.footprints
        )


class TestObsWiring:
    def test_analysis_counters_fire(self, obs_enabled):
        lint_program(build_negative_fixture())
        counters = obs_enabled.counters_dict()
        assert counters.get("staticcheck.programs_analyzed") == 1
        assert counters.get("staticcheck.diagnostics.error") == 2
        assert counters.get("staticcheck.diagnostics.warning") == 3
