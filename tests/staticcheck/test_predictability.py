"""Static predictability verdicts: classes, edge cases, memoization."""

import pytest

from repro.isa.instructions import (
    Alu,
    AluImm,
    AluOp,
    ArrayBase,
    Br,
    Cond,
    Halt,
    Imm,
    Jmp,
    Load,
    Rand,
)
from repro.isa.program import ProgramBuilder
from repro.staticcheck.engine import analyze_program, lint_program
from repro.staticcheck.predictability import Verdict


def verdicts_by_block(program):
    return {e.block: e for e in analyze_program(program).predictability}


def counted_loop_program(bound=20):
    b = ProgramBuilder("counted")
    e = b.block("entry")
    e.instructions = [Imm(2, bound)]
    e.terminator = Jmp("loop")
    loop = b.block("loop")
    loop.instructions = [AluImm(AluOp.ADD, 1, 1, 1)]
    loop.terminator = Br(Cond.LT, 1, 2, "loop", "done")
    b.block("done").terminator = Halt()
    return b.build()


class TestVerdictClasses:
    def test_const_from_operand_intervals(self):
        # Never-written registers are provably [0, 0]: EQ always holds.
        b = ProgramBuilder("const")
        b.block("entry").terminator = Br(Cond.EQ, 5, 6, "a", "z")
        b.block("a").terminator = Jmp("done")
        b.block("z").terminator = Jmp("done")
        b.block("done").terminator = Halt()
        entry = verdicts_by_block(b.build())["entry"]
        assert entry.verdict is Verdict.CONST
        assert entry.direction is True
        assert entry.predicted_accuracy == 1.0

    def test_loop_exit_on_counted_self_loop(self):
        info = verdicts_by_block(counted_loop_program(bound=20))["loop"]
        assert info.verdict is Verdict.LOOP_EXIT
        assert (info.trip_lo, info.trip_hi) == (20, 20)
        assert info.predicted_accuracy == pytest.approx(1 - 1 / 20)

    def test_biased_rand_vs_constant(self):
        b = ProgramBuilder("biased")
        e = b.block("entry")
        e.instructions = [Imm(3, 400)]
        e.terminator = Jmp("loop")
        loop = b.block("loop")
        loop.instructions = [Rand(5, 0, 100), Imm(6, 99)]
        loop.terminator = Br(Cond.LT, 5, 6, "hit", "tail")
        b.block("hit").terminator = Jmp("tail")
        tail = b.block("tail")
        tail.instructions = [AluImm(AluOp.ADD, 2, 2, 1)]
        tail.terminator = Br(Cond.LT, 2, 3, "loop", "done")
        b.block("done").terminator = Halt()
        entry = verdicts_by_block(b.build())["loop"]
        assert entry.verdict is Verdict.BIASED
        assert entry.predicted_accuracy == pytest.approx(0.99)

    def test_h2p_candidate_on_raw_data_consumer(self):
        b = ProgramBuilder("data")
        b.data("d", list(range(16)))
        e = b.block("entry")
        e.instructions = [ArrayBase(1, "d"), Imm(2, 0), Imm(3, 16)]
        e.terminator = Jmp("loop")
        loop = b.block("loop")
        loop.instructions = [Alu(AluOp.ADD, 4, 1, 2), Load(5, 4), Imm(6, 8)]
        loop.terminator = Br(Cond.LT, 5, 6, "hit", "tail")
        b.block("hit").terminator = Jmp("tail")
        tail = b.block("tail")
        tail.instructions = [AluImm(AluOp.ADD, 2, 2, 1)]
        tail.terminator = Br(Cond.LT, 2, 3, "loop", "done")
        b.block("done").terminator = Halt()
        by_block = verdicts_by_block(b.build())
        assert by_block["loop"].verdict is Verdict.H2P_CANDIDATE
        assert by_block["tail"].verdict is Verdict.LOOP_EXIT

    def test_correlated_with_bounded_distance(self):
        # The m-branch outcome replays the entry branch's outcome: one
        # global-history bit back suffices.
        b = ProgramBuilder("corr")
        e = b.block("entry")
        e.instructions = [Rand(5, 0, 2)]
        e.terminator = Br(Cond.EQ, 5, 0, "a", "z")
        a = b.block("a")
        a.instructions = [Imm(7, 4)]
        a.terminator = Jmp("m")
        z = b.block("z")
        z.instructions = [Imm(7, 8)]
        z.terminator = Jmp("m")
        m = b.block("m")
        m.instructions = [Imm(8, 6)]
        m.terminator = Br(Cond.LT, 7, 8, "t", "f")
        b.block("t").terminator = Jmp("done")
        b.block("f").terminator = Jmp("done")
        b.block("done").terminator = Halt()
        entry = verdicts_by_block(b.build())["m"]
        assert entry.verdict is Verdict.CORRELATED
        assert entry.distance == 1

    def test_cyclic_revealing_region_is_h2p_candidate(self):
        # Same correlation diamond, but inside a loop: the revealing branch
        # sits an unbounded number of branches back.
        b = ProgramBuilder("cyc")
        e = b.block("entry")
        e.instructions = [Imm(2, 0), Imm(3, 40)]
        e.terminator = Jmp("loop")
        loop = b.block("loop")
        loop.instructions = [Rand(5, 0, 2)]
        loop.terminator = Br(Cond.EQ, 5, 0, "a", "z")
        a = b.block("a")
        a.instructions = [Imm(7, 4)]
        a.terminator = Jmp("m")
        z = b.block("z")
        z.instructions = [Imm(7, 8)]
        z.terminator = Jmp("m")
        m = b.block("m")
        m.instructions = [Imm(8, 6)]
        m.terminator = Br(Cond.LT, 7, 8, "t", "f")
        b.block("t").terminator = Jmp("tail")
        b.block("f").terminator = Jmp("tail")
        tail = b.block("tail")
        tail.instructions = [AluImm(AluOp.ADD, 2, 2, 1)]
        tail.terminator = Br(Cond.LT, 2, 3, "loop", "done")
        b.block("done").terminator = Halt()
        assert verdicts_by_block(b.build())["m"].verdict is Verdict.H2P_CANDIDATE


class TestEdgeCases:
    def test_single_block_program_has_no_verdicts(self):
        b = ProgramBuilder("single")
        b.block("entry").terminator = Halt()
        analysis = analyze_program(b.build())
        assert analysis.predictability == ()
        assert analysis.footprint.conditional_branches == 0

    def test_unreachable_branch_is_rare_with_zero_bound(self):
        b = ProgramBuilder("unreach")
        b.block("entry").terminator = Jmp("done")
        orphan = b.block("orphan")
        orphan.instructions = [AluImm(AluOp.ADD, 1, 1, 1)]
        orphan.terminator = Br(Cond.LT, 1, 2, "orphan", "done")
        b.block("done").terminator = Halt()
        entry = verdicts_by_block(b.build())["orphan"]
        assert entry.verdict is Verdict.RARE
        assert entry.exec_bound == 0

    def test_every_conditional_branch_gets_exactly_one_verdict(self):
        program = counted_loop_program()
        analysis = analyze_program(program)
        blocks = [e.block for e in analysis.predictability]
        assert sorted(blocks) == sorted(
            label for label, _ip, _br in program.conditional_branches()
        )

    def test_verdicts_sorted_by_ip(self):
        analysis = analyze_program(counted_loop_program())
        ips = [e.ip for e in analysis.predictability]
        assert ips == sorted(ips)

    def test_as_dict_drops_unset_evidence(self):
        entry = verdicts_by_block(counted_loop_program())["loop"]
        doc = entry.as_dict()
        assert doc["verdict"] == "loop_exit"
        assert "trip_lo" in doc
        assert "distance" not in doc  # not a CORRELATED verdict
        assert "exec_bound" not in doc  # not a RARE verdict


class TestMemoization:
    def test_analysis_cached_on_program_identity(self, obs_enabled):
        program = counted_loop_program()
        first = analyze_program(program)
        second = analyze_program(program)
        assert second is first
        counters = obs_enabled.counters_dict()
        assert counters["staticcheck.cache.misses"] == 1
        assert counters["staticcheck.cache.hits"] == 1

    def test_distinct_programs_do_not_share(self, obs_enabled):
        a = analyze_program(counted_loop_program())
        b = analyze_program(counted_loop_program())
        assert a is not b
        assert obs_enabled.counters_dict()["staticcheck.cache.misses"] == 2


class TestPredictabilityDiagnostics:
    def test_sc401_fires_on_h2p_candidate(self):
        b = ProgramBuilder("data")
        b.data("d", [3, 1, 2, 0])
        e = b.block("entry")
        e.instructions = [ArrayBase(1, "d"), Load(5, 1), Imm(6, 2)]
        e.terminator = Br(Cond.LT, 5, 6, "a", "z")
        b.block("a").terminator = Jmp("done")
        b.block("z").terminator = Jmp("done")
        b.block("done").terminator = Halt()
        _analysis, diagnostics = lint_program(b.build(), predictability=True)
        assert "SC401" in {d.rule_id for d in diagnostics}

    def test_sc401_needs_predictability_mode(self):
        b = ProgramBuilder("data")
        b.data("d", [3, 1, 2, 0])
        e = b.block("entry")
        e.instructions = [ArrayBase(1, "d"), Load(5, 1), Imm(6, 2)]
        e.terminator = Br(Cond.LT, 5, 6, "a", "z")
        b.block("a").terminator = Jmp("done")
        b.block("z").terminator = Jmp("done")
        b.block("done").terminator = Halt()
        _analysis, diagnostics = lint_program(b.build())
        assert "SC401" not in {d.rule_id for d in diagnostics}
