"""Interval value-range dataflow: transfer functions, joins, outcomes."""

from repro.isa.instructions import (
    Alu,
    AluImm,
    AluOp,
    Br,
    Cond,
    Halt,
    Imm,
    Jmp,
    Rand,
)
from repro.isa.program import ProgramBuilder
from repro.staticcheck.cfg import build_cfg
from repro.staticcheck.ranges import (
    alu_interval,
    branch_outcome,
    compute_ranges,
)


def build(b):
    program = b.build()
    return program, build_cfg(program)


class TestAluInterval:
    def test_add_is_exact_on_singletons(self):
        assert alu_interval(AluOp.ADD, (3, 3), (4, 4)) == (7, 7)

    def test_sub_can_wrap_to_full_range(self):
        # 0 - 1 wraps in 32-bit unsigned arithmetic; the interval must
        # widen rather than go negative.
        lo, hi = alu_interval(AluOp.SUB, (0, 0), (1, 1))
        assert lo == 0
        assert hi == (1 << 32) - 1

    def test_mod_bounds_by_divisor(self):
        lo, hi = alu_interval(AluOp.MOD, (0, 1 << 20), (7, 7))
        assert lo == 0
        assert hi <= 6


class TestComputeRanges:
    def test_constants_propagate_through_straight_line(self):
        b = ProgramBuilder("straight")
        e = b.block("entry")
        e.instructions = [Imm(1, 5), AluImm(AluOp.ADD, 2, 1, 3)]
        e.terminator = Jmp("done")
        done = b.block("done")
        done.terminator = Halt()
        program, cfg = build(b)
        ranges = compute_ranges(program, cfg)
        state = ranges.block_in["done"]
        assert state[1] == (5, 5)
        assert state[2] == (8, 8)

    def test_join_widens_over_diamond(self):
        b = ProgramBuilder("diamond")
        e = b.block("entry")
        e.instructions = [Rand(1, 0, 2)]
        e.terminator = Br(Cond.EQ, 1, 0, "a", "z")
        a = b.block("a")
        a.instructions = [Imm(2, 10)]
        a.terminator = Jmp("done")
        z = b.block("z")
        z.instructions = [Imm(2, 20)]
        z.terminator = Jmp("done")
        done = b.block("done")
        done.terminator = Halt()
        program, cfg = build(b)
        state = compute_ranges(program, cfg).block_in["done"]
        assert state[2] == (10, 20)

    def test_rand_interval_is_half_open(self):
        b = ProgramBuilder("rand")
        e = b.block("entry")
        e.instructions = [Rand(1, 3, 11)]
        e.terminator = Jmp("done")
        b.block("done").terminator = Halt()
        program, cfg = build(b)
        assert compute_ranges(program, cfg).block_in["done"][1] == (3, 10)

    def test_loop_counter_widens_but_stays_bounded_below(self):
        b = ProgramBuilder("loop")
        e = b.block("entry")
        e.instructions = [Imm(1, 0), Imm(2, 10)]
        e.terminator = Jmp("loop")
        loop = b.block("loop")
        loop.instructions = [AluImm(AluOp.ADD, 1, 1, 1)]
        loop.terminator = Br(Cond.LT, 1, 2, "loop", "done")
        b.block("done").terminator = Halt()
        program, cfg = build(b)
        lo, _hi = compute_ranges(program, cfg).at_terminator(program, "loop")[1]
        assert lo >= 0  # widening never invents negative values

    def test_at_terminator_applies_block_instructions(self):
        b = ProgramBuilder("term")
        e = b.block("entry")
        e.instructions = [Imm(1, 1), Alu(AluOp.ADD, 1, 1, 1)]
        e.terminator = Jmp("done")
        b.block("done").terminator = Halt()
        program, cfg = build(b)
        ranges = compute_ranges(program, cfg)
        assert ranges.block_in["entry"][1] == (0, 0)
        assert ranges.at_terminator(program, "entry")[1] == (2, 2)


class TestBranchOutcome:
    def test_constant_true(self):
        br = Br(Cond.LT, 1, 2, "t", "f")
        assert branch_outcome(br, {1: (0, 3), 2: (5, 9)}) is True

    def test_constant_false(self):
        br = Br(Cond.LT, 1, 2, "t", "f")
        assert branch_outcome(br, {1: (5, 9), 2: (0, 5)}) is False

    def test_overlap_is_undecidable(self):
        br = Br(Cond.LT, 1, 2, "t", "f")
        assert branch_outcome(br, {1: (0, 6), 2: (4, 9)}) is None

    def test_eq_singletons(self):
        br = Br(Cond.EQ, 1, 2, "t", "f")
        assert branch_outcome(br, {1: (7, 7), 2: (7, 7)}) is True
        assert branch_outcome(br, {1: (7, 7), 2: (8, 8)}) is False
