"""Trip-count analysis: proven counted loops and the shapes it rejects."""

from repro.isa.instructions import (
    Alu,
    AluImm,
    AluOp,
    ArrayBase,
    Br,
    Cond,
    Halt,
    Imm,
    Jmp,
    Load,
)
from repro.isa.program import ProgramBuilder
from repro.staticcheck.engine import analyze_program


def counted_loop(bound=10, step=1, cond=Cond.LT):
    b = ProgramBuilder("counted")
    e = b.block("entry")
    e.instructions = [Imm(1, 0), Imm(2, bound)]
    e.terminator = Jmp("loop")
    loop = b.block("loop")
    loop.instructions = [AluImm(AluOp.ADD, 1, 1, step)]
    loop.terminator = Br(cond, 1, 2, "loop", "done")
    b.block("done").terminator = Halt()
    return b.build()


class TestCountedLoops:
    def test_exact_trip_count(self):
        trips = analyze_program(counted_loop(bound=10)).trips
        info = trips["loop"]
        assert info.header == "loop"
        assert info.step == 1
        assert (info.trip_lo, info.trip_hi) == (10, 10)

    def test_exit_mispredict_rate_is_one_over_n(self):
        info = analyze_program(counted_loop(bound=50)).trips["loop"]
        assert abs(info.exit_mispredict_rate - 1 / 50) < 1e-12

    def test_step_divides_trip_count(self):
        info = analyze_program(counted_loop(bound=10, step=2)).trips["loop"]
        assert (info.trip_lo, info.trip_hi) == (5, 5)

    def test_le_adds_one_iteration(self):
        info = analyze_program(counted_loop(bound=10, cond=Cond.LE)).trips[
            "loop"
        ]
        assert (info.trip_lo, info.trip_hi) == (11, 11)

    def test_swapped_operands_still_prove(self):
        # bound > iv continues the loop: the analysis must normalize the
        # operand order rather than require the IV on the left.
        b = ProgramBuilder("swapped")
        e = b.block("entry")
        e.instructions = [Imm(1, 0), Imm(2, 8)]
        e.terminator = Jmp("loop")
        loop = b.block("loop")
        loop.instructions = [AluImm(AluOp.ADD, 1, 1, 1)]
        loop.terminator = Br(Cond.GT, 2, 1, "loop", "done")
        b.block("done").terminator = Halt()
        info = analyze_program(b.build()).trips["loop"]
        assert (info.trip_lo, info.trip_hi) == (8, 8)

    def test_variable_bound_gives_interval(self):
        # The bound joins to [4, 8] over an untainted diamond (interval
        # analysis keeps both arms); the trip count must become an interval
        # rather than be rejected.
        b = ProgramBuilder("interval")
        e = b.block("entry")
        e.instructions = [Imm(1, 0), Imm(3, 1)]
        e.terminator = Br(Cond.EQ, 3, 3, "a", "z")
        a = b.block("a")
        a.instructions = [Imm(2, 4)]
        a.terminator = Jmp("loop")
        z = b.block("z")
        z.instructions = [Imm(2, 8)]
        z.terminator = Jmp("loop")
        loop = b.block("loop")
        loop.instructions = [AluImm(AluOp.ADD, 1, 1, 1)]
        loop.terminator = Br(Cond.LT, 1, 2, "loop", "done")
        b.block("done").terminator = Halt()
        info = analyze_program(b.build()).trips["loop"]
        assert (info.trip_lo, info.trip_hi) == (4, 8)


class TestRejectedShapes:
    def test_data_tainted_bound_is_rejected(self):
        # A loaded trip count re-randomizes the exit position: not counted.
        b = ProgramBuilder("tainted")
        b.data("d", [5, 6, 7, 8])
        e = b.block("entry")
        e.instructions = [Imm(1, 0), ArrayBase(3, "d"), Load(2, 3)]
        e.terminator = Jmp("loop")
        loop = b.block("loop")
        loop.instructions = [AluImm(AluOp.ADD, 1, 1, 1)]
        loop.terminator = Br(Cond.LT, 1, 2, "loop", "done")
        b.block("done").terminator = Halt()
        assert "loop" not in analyze_program(b.build()).trips

    def test_non_affine_iv_is_rejected(self):
        b = ProgramBuilder("nonaffine")
        e = b.block("entry")
        e.instructions = [Imm(1, 1), Imm(2, 100)]
        e.terminator = Jmp("loop")
        loop = b.block("loop")
        loop.instructions = [AluImm(AluOp.MUL, 1, 1, 2)]  # geometric, not affine
        loop.terminator = Br(Cond.LT, 1, 2, "loop", "done")
        b.block("done").terminator = Halt()
        assert "loop" not in analyze_program(b.build()).trips

    def test_bound_written_in_body_is_rejected(self):
        b = ProgramBuilder("movingbound")
        e = b.block("entry")
        e.instructions = [Imm(1, 0), Imm(2, 10)]
        e.terminator = Jmp("loop")
        loop = b.block("loop")
        loop.instructions = [
            AluImm(AluOp.ADD, 1, 1, 1),
            AluImm(AluOp.ADD, 2, 2, 1),
        ]
        loop.terminator = Br(Cond.LT, 1, 2, "loop", "done")
        b.block("done").terminator = Halt()
        assert "loop" not in analyze_program(b.build()).trips

    def test_two_writes_to_iv_is_rejected(self):
        b = ProgramBuilder("twowrites")
        e = b.block("entry")
        e.instructions = [Imm(1, 0), Imm(2, 10)]
        e.terminator = Jmp("loop")
        loop = b.block("loop")
        loop.instructions = [
            AluImm(AluOp.ADD, 1, 1, 1),
            Alu(AluOp.ADD, 1, 1, 1),
        ]
        loop.terminator = Br(Cond.LT, 1, 2, "loop", "done")
        b.block("done").terminator = Halt()
        assert "loop" not in analyze_program(b.build()).trips

    def test_unreachable_loop_is_skipped(self):
        b = ProgramBuilder("unreachable")
        e = b.block("entry")
        e.terminator = Jmp("done")
        orphan = b.block("orphan")
        orphan.instructions = [AluImm(AluOp.ADD, 1, 1, 1)]
        orphan.terminator = Br(Cond.LT, 1, 2, "orphan", "done")
        b.block("done").terminator = Halt()
        assert "orphan" not in analyze_program(b.build()).trips
