"""Smoke tests keeping the example scripts working.

Each example's ``main()`` is executed (with output captured); they exercise
the public API end to end, so a breaking API change fails here before a
user hits it.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, _EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "custom_workload", "h2p_characterization",
     "cnn_helper_deployment", "characterize_workload"],
)
def test_example_runs(name, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [f"{name}.py"])
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_reproduce_paper_example_delegates_to_runner(capsys, monkeypatch):
    module = load_example("reproduce_paper")
    # The example must route through the shared runner's main().
    from repro.experiments import runner

    assert module.main is runner.main
