"""End-to-end integration: the full measurement pipeline on a custom
workload, exercising every subsystem seam outside the experiment drivers."""

import numpy as np
import pytest

from repro.analysis import (
    dependency_row,
    rank_heavy_hitters,
    screen_workload,
)
from repro.analysis.h2p import H2pCriteria
from repro.isa import Executor, ProgramBuilder
from repro.phases import cluster_phases, prepare_bbvs
from repro.pipeline import (
    IntervalIpcModel,
    SKYLAKE_LIKE,
    simulate_trace,
)
from repro.predictors import Perfect, make_tage_sc_l
from repro.workloads import (
    build_driver,
    build_h2p_kernel,
    build_loop_nest_kernel,
    build_scan_kernel,
    make_input_data,
)


@pytest.fixture(scope="module")
def pipeline_artifacts():
    """Build, execute, and simulate a compact two-phase workload once."""
    b = ProgramBuilder("integration")
    b.data("input_data", make_input_data(123, 0, 4093, "uniform"))
    b.data("scan_data", np.sort(make_input_data(124, 0, 4093, "uniform")))
    h2p = build_h2p_kernel(b, "h2p", "input_data", 4093, h2p_threshold=120)
    loops = build_loop_nest_kernel(b, "loops", inner_trips=9)
    scan = build_scan_kernel(b, "scan", "scan_data", 4093, bias_threshold=52000)
    build_driver(
        b,
        segments=[
            [(h2p.entry, 300), (loops.entry, 80)],
            [(scan.entry, 500), (loops.entry, 200)],
        ],
        rounds_per_segment=2,
    )
    program = b.build()
    executor = Executor(program, seed=5, track_dataflow=True,
                        bbv_interval=30_000)
    execution = executor.run(240_000)
    simulation = simulate_trace(
        execution.trace, make_tage_sc_l(8), slice_instructions=60_000
    )
    return program, h2p, execution, simulation


class TestFullPipeline:
    def test_simulation_covers_all_conditionals(self, pipeline_artifacts):
        _, _, execution, simulation = pipeline_artifacts
        assert simulation.stats.total_executions == int(
            execution.trace.conditional_mask.sum()
        )

    def test_h2p_screened_and_ranked(self, pipeline_artifacts):
        program, h2p, execution, simulation = pipeline_artifacts
        criteria = H2pCriteria(min_executions=100, min_mispredictions=10)
        report = screen_workload(
            "integration", "i0", simulation.slice_stats, criteria
        )
        assert report.union_h2p_ips
        designed_ip = program.terminator_ip(h2p.h2p_labels[0])
        assert designed_ip in report.union_h2p_ips
        top = rank_heavy_hitters(simulation.stats, report.union_h2p_ips)[0]
        assert top.executions >= 100

    def test_dependency_analysis_finds_designed_deps(self, pipeline_artifacts):
        program, h2p, execution, _ = pipeline_artifacts
        designed_ip = program.terminator_ip(h2p.h2p_labels[0])
        row, profile = dependency_row(
            "integration", execution.cond_branch_events, designed_ip, 2_500
        )
        dep_ips = {
            program.terminator_ip(lbl) for lbl in h2p.dependency_labels
        }
        assert dep_ips.issubset(set(profile.dependency_branch_ips))

    def test_phase_clustering_recovers_segments(self, pipeline_artifacts):
        _, _, execution, _ = pipeline_artifacts
        vectors = prepare_bbvs(execution.bbvs)
        clustering = cluster_phases(vectors, max_k=4)
        assert clustering.num_phases >= 2  # two driver segments

    def test_ipc_model_orders_predictors(self, pipeline_artifacts):
        _, _, execution, simulation = pipeline_artifacts
        perfect = simulate_trace(execution.trace, Perfect())
        model = IntervalIpcModel(SKYLAKE_LIKE)
        ipc_tage = model.ipc(simulation.instr_count, simulation.mispredictions)
        ipc_perfect = model.ipc(perfect.instr_count, perfect.mispredictions)
        assert ipc_perfect > ipc_tage

    def test_storage_scaling_on_this_workload(self, pipeline_artifacts):
        _, _, execution, simulation = pipeline_artifacts
        big = simulate_trace(execution.trace, make_tage_sc_l(64))
        # More storage never hurts materially on a mixed workload.
        assert big.accuracy >= simulation.accuracy - 0.005
