"""Tests for the workload driver and spec plumbing."""

import numpy as np
import pytest

from repro.core.types import BranchKind
from repro.isa.executor import Executor
from repro.isa.instructions import Imm, Ret
from repro.isa.program import ProgramBuilder
from repro.workloads.base import (
    R_SEGMENT,
    build_driver,
    make_input_data,
    trace_workload,
)
from repro.workloads.kernels import build_loop_nest_kernel


def make_marker_kernel(b, name, marker_reg, value):
    """A kernel that just records a marker value (visible in segments)."""
    entry = b.block(f"{name}_entry")
    entry.instructions = [Imm(marker_reg, value)]
    entry.terminator = Ret()

    class H:
        pass

    h = H()
    h.entry = entry.label
    return h


class TestBuildDriver:
    def test_segments_cycle(self):
        b = ProgramBuilder("d")
        k = build_loop_nest_kernel(b, "k", inner_trips=4)
        segments = [[(k.entry, 3)], [(k.entry, 6)]]
        build_driver(b, segments, rounds_per_segment=2)
        prog = b.build()
        res = Executor(prog).run(20_000)
        # The segment switch is an indirect branch executed once per round.
        indirect = (res.trace.kinds == int(BranchKind.INDIRECT)).sum()
        assert indirect > 4

    def test_segment_register_visible(self):
        b = ProgramBuilder("d")
        k = build_loop_nest_kernel(b, "k", inner_trips=4)
        build_driver(b, [[(k.entry, 2)], [(k.entry, 2)], [(k.entry, 2)]],
                     rounds_per_segment=1)
        prog = b.build()
        # Snapshot R_SEGMENT at the loop kernel's outer-tail branch.
        ip = prog.terminator_ip("k_outer_tail")
        ex = Executor(prog, snapshot_ips=[ip], tracked_registers=[R_SEGMENT])
        res = ex.run(10_000)
        seen = {s[0] for s in res.register_snapshots[ip]}
        assert seen == {0, 1, 2}

    def test_rounds_per_segment_power_of_two(self):
        b = ProgramBuilder("d")
        k = build_loop_nest_kernel(b, "k")
        with pytest.raises(ValueError):
            build_driver(b, [[(k.entry, 2)]], rounds_per_segment=3)

    def test_empty_segment_rejected(self):
        b = ProgramBuilder("d")
        with pytest.raises(ValueError):
            build_driver(b, [[]])

    def test_zero_iterations_rejected(self):
        b = ProgramBuilder("d")
        k = build_loop_nest_kernel(b, "k")
        with pytest.raises(ValueError):
            build_driver(b, [[(k.entry, 0)]])


class TestWorkloadSpec:
    def test_trace_workload_validates_input_index(self):
        from repro.workloads import SPECINT_WORKLOADS

        with pytest.raises(ValueError):
            trace_workload(SPECINT_WORKLOADS[0], 99, instructions=1000)

    def test_input_name(self):
        from repro.workloads import SPECINT_WORKLOADS

        assert SPECINT_WORKLOADS[0].input_name(2) == "input2"


class TestMakeInputData:
    @pytest.mark.parametrize("style", ["uniform", "zipf", "bimodal", "lowcard"])
    def test_styles_produce_valid_arrays(self, style):
        arr = make_input_data(1, 0, 500, style)
        assert len(arr) == 500
        assert (arr >= 0).all()

    def test_deterministic_per_input(self):
        a = make_input_data(1, 0, 100)
        b = make_input_data(1, 0, 100)
        np.testing.assert_array_equal(a, b)

    def test_inputs_differ(self):
        a = make_input_data(1, 0, 100)
        b = make_input_data(1, 1, 100)
        assert not np.array_equal(a, b)

    def test_lowcard_has_few_values(self):
        arr = make_input_data(1, 0, 1000, "lowcard")
        assert len(np.unique(arr)) <= 12

    def test_unknown_style(self):
        with pytest.raises(ValueError):
            make_input_data(1, 0, 10, "nope")
