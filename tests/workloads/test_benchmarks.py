"""Tests for the SPECint-like and LCF synthetic benchmarks."""

import numpy as np
import pytest

from repro.pipeline.simulator import simulate_trace
from repro.predictors.tagescl import make_tage_sc_l
from repro.workloads import (
    LCF_WORKLOADS,
    SPECINT_WORKLOADS,
    WORKLOADS_BY_NAME,
    trace_workload,
)
from repro.workloads.helper_study import HELPER_STUDY_WORKLOAD, h2p_branch_ip


class TestSpecintSuite:
    def test_nine_benchmarks(self):
        assert len(SPECINT_WORKLOADS) == 9
        names = [w.name for w in SPECINT_WORKLOADS]
        assert "605.mcf_s" in names and "641.leela_s" in names

    @pytest.mark.parametrize("spec", SPECINT_WORKLOADS, ids=lambda w: w.name)
    def test_builds_and_traces(self, spec):
        wt = trace_workload(spec, 0, instructions=30_000)
        assert wt.trace.instr_count >= 30_000
        assert wt.trace.num_conditional() > 1000

    def test_static_ips_identical_across_inputs(self):
        spec = WORKLOADS_BY_NAME["641.leela_s"]
        t0 = trace_workload(spec, 0, instructions=150_000)
        t1 = trace_workload(spec, 1, instructions=150_000)
        ips0 = set(t0.trace.static_branch_ips().tolist())
        ips1 = set(t1.trace.static_branch_ips().tolist())
        # The executed subsets overlap heavily (input-driven dispatch may
        # touch different cold handlers)...
        assert len(ips0 & ips1) / len(ips0 | ips1) > 0.7
        # ...and the static program itself is identical across inputs.
        p0, p1 = spec.build(0), spec.build(1)
        assert p0.block_base_ip == p1.block_base_ip

    def test_outcomes_differ_across_inputs(self):
        spec = WORKLOADS_BY_NAME["605.mcf_s"]
        t0 = trace_workload(spec, 0, instructions=100_000)
        t1 = trace_workload(spec, 1, instructions=100_000)
        n = min(len(t0.trace), len(t1.trace))
        agree = (t0.trace.taken[:n] == t1.trace.taken[:n]).mean()
        assert agree < 0.99  # data-dependent directions changed


class TestLcfSuite:
    def test_six_applications(self):
        assert len(LCF_WORKLOADS) == 6

    @pytest.mark.parametrize("spec", LCF_WORKLOADS, ids=lambda w: w.name)
    def test_builds_and_traces(self, spec):
        wt = trace_workload(spec, 0, instructions=30_000)
        assert wt.trace.num_conditional() > 500

    def test_game_has_largest_footprint(self, lab):
        sizes = {}
        for spec in LCF_WORKLOADS:
            result = lab.simulate(spec.name, 0, "tage-sc-l-8kb")
            sizes[spec.name] = len(result.stats)
        assert max(sizes, key=sizes.get) == "game"
        assert min(sizes, key=sizes.get) == "streaming_server"

    def test_execs_per_branch_ordering(self, lab):
        per_branch = {}
        for spec in LCF_WORKLOADS:
            result = lab.simulate(spec.name, 0, "tage-sc-l-8kb")
            per_branch[spec.name] = result.stats.mean_executions_per_branch()
        # Table II's extremes: streaming server hottest, game coldest.
        assert max(per_branch, key=per_branch.get) == "streaming_server"
        assert min(per_branch, key=per_branch.get) == "game"

    def test_lcf_less_accurate_than_spec(self, lab):
        lcf_acc = np.mean([
            lab.simulate(s.name, 0, "tage-sc-l-8kb").accuracy
            for s in LCF_WORKLOADS
        ])
        spec_acc = np.mean([
            lab.simulate(s.name, 0, "tage-sc-l-8kb").accuracy
            for s in SPECINT_WORKLOADS
        ])
        assert lcf_acc < spec_acc


class TestHelperStudyWorkload:
    def test_h2p_ip_resolvable(self):
        wt = trace_workload(HELPER_STUDY_WORKLOAD, 0, instructions=50_000)
        ip = h2p_branch_ip(wt.metadata["program"])
        cond = wt.trace.conditional_mask
        execs = (wt.trace.ips[cond] == ip).sum()
        assert execs > 500

    def test_study_h2p_is_hard_for_tage(self):
        wt = trace_workload(HELPER_STUDY_WORKLOAD, 0, instructions=200_000)
        ip = h2p_branch_ip(wt.metadata["program"])
        res = simulate_trace(wt.trace, make_tage_sc_l(8))
        assert res.stats.get(ip).accuracy < 0.97
