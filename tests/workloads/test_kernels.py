"""Tests for the branch-behaviour kernels."""

import random

import numpy as np
import pytest

from repro.isa.executor import Executor
from repro.isa.instructions import Imm, Jmp, Call
from repro.isa.program import ProgramBuilder
from repro.pipeline.simulator import simulate_trace
from repro.predictors.tagescl import make_tage_sc_l
from repro.workloads.base import make_input_data
from repro.workloads.kernels import (
    R_ARG0,
    build_cold_check_kernel,
    build_h2p_kernel,
    build_loop_nest_kernel,
    build_periodic_workingset_kernel,
    build_pointer_chase_kernel,
    build_rare_dispatch_kernel,
    build_scan_kernel,
)


def harness(build_fn, iterations=300, instructions=80_000, data=None, seed=3):
    """Wrap a kernel in a driver that calls it repeatedly."""
    b = ProgramBuilder("kernel_test")
    if data:
        for name, values in data.items():
            b.data(name, values)
    main = b.block("main")
    b.set_entry("main")
    handles = build_fn(b)
    main.instructions = [Imm(R_ARG0, iterations)]
    loop = b.block("driver_loop")
    main.terminator = Jmp("driver_loop")
    loop.instructions = [Imm(R_ARG0, iterations)]
    loop.terminator = Call(handles.entry, ret_to="driver_loop")
    prog = b.build()
    res = Executor(prog, seed=seed).run(instructions)
    return prog, res, handles


def branch_accuracy(prog, trace, label, kib=8):
    sim = simulate_trace(trace, make_tage_sc_l(kib))
    ip = prog.terminator_ip(label)
    return sim.stats.get(ip)


class TestLoopNestKernel:
    def test_highly_predictable(self):
        prog, res, _ = harness(
            lambda b: build_loop_nest_kernel(b, "k", inner_trips=10)
        )
        sim = simulate_trace(res.trace, make_tage_sc_l(8), warmup_branches=2000)
        assert sim.accuracy > 0.99

    def test_validation(self):
        b = ProgramBuilder("t")
        with pytest.raises(ValueError):
            build_loop_nest_kernel(b, "k", inner_trips=0)


class TestScanKernel:
    def test_sorted_data_is_easy(self):
        data = {"d": np.sort(make_input_data(1, 0, 1000, "uniform"))}
        prog, res, _ = harness(
            lambda b: build_scan_kernel(b, "k", "d", 1000, bias_threshold=52000),
            data=data,
        )
        sim = simulate_trace(res.trace, make_tage_sc_l(8), warmup_branches=2000)
        assert sim.accuracy > 0.99

    def test_random_data_harder_than_sorted(self):
        # An unsorted array still yields a *fixed periodic* direction
        # sequence (the scan cycles the same data), which TAGE partially
        # memorizes — but it stays measurably below the sorted case.
        data = {"d": make_input_data(1, 0, 1000, "uniform")}
        prog, res, _ = harness(
            lambda b: build_scan_kernel(b, "k", "d", 1000, bias_threshold=32768),
            data=data,
        )
        counts = branch_accuracy(prog, res.trace, "k_loop")
        assert counts.accuracy < 0.99


class TestH2pKernel:
    def _run(self, **kwargs):
        data = {"d": make_input_data(2, 0, 4093, "uniform")}
        return harness(
            lambda b: build_h2p_kernel(b, "k", "d", 4093, **kwargs),
            data=data,
            instructions=120_000,
        )

    def test_h2p_branch_is_hard(self):
        prog, res, handles = self._run(h2p_threshold=128)
        counts = branch_accuracy(prog, res.trace, handles.h2p_labels[0])
        assert counts.executions > 1000
        assert counts.accuracy < 0.8

    def test_threshold_sets_bias(self):
        prog, res, handles = self._run(h2p_threshold=32)
        ip = prog.terminator_ip(handles.h2p_labels[0])
        cond = res.trace.conditional_mask
        sel = res.trace.ips[cond] == ip
        taken_rate = res.trace.taken[cond][sel].mean()
        assert taken_rate == pytest.approx(32 / 256, abs=0.04)

    def test_dependency_branches_reported(self):
        prog, res, handles = self._run()
        assert len(handles.dependency_labels) == 2

    def test_xor_mode_determined_by_deps(self):
        prog, res, handles = self._run(xor_correlated=True)
        # Outcome = (v&1) ^ (w&1): taken rate ~0.5 but fully determined.
        ip = prog.terminator_ip(handles.h2p_labels[0])
        cond = res.trace.conditional_mask
        sel = res.trace.ips[cond] == ip
        assert 0.4 < res.trace.taken[cond][sel].mean() < 0.6
        # With the dep-determined noise gap, TAGE can learn it.
        counts = branch_accuracy(prog, res.trace, handles.h2p_labels[0])
        assert counts.accuracy > 0.9

    def test_noise_random_defeats_tage(self):
        prog, res, handles = self._run(xor_correlated=True, noise_random=True)
        counts = branch_accuracy(prog, res.trace, handles.h2p_labels[0])
        assert counts.accuracy < 0.97  # clearly below the deterministic case

    def test_dep_threshold_validation(self):
        with pytest.raises(ValueError):
            self._run(dep_a_threshold=0)


class TestPointerChase:
    def test_runs_and_branch_is_data_dependent(self):
        rng = random.Random(0)
        perm = list(range(4093))
        rng.shuffle(perm)
        data = {
            "p": perm,
            "v": make_input_data(3, 0, 4093, "uniform"),
        }
        prog, res, handles = harness(
            lambda b: build_pointer_chase_kernel(b, "k", "p", "v", 4093),
            data=data,
        )
        counts = branch_accuracy(prog, res.trace, handles.h2p_labels[0])
        assert counts.executions > 500
        assert counts.accuracy < 0.9


class TestRareDispatch:
    def _build(self, b, **kwargs):
        return build_rare_dispatch_kernel(
            b, "k", num_handlers=60, branches_per_handler=2,
            rng=random.Random(7), **kwargs,
        )

    def test_population_is_rare(self):
        prog, res, _ = harness(self._build, iterations=100, instructions=60_000)
        sim = simulate_trace(res.trace, make_tage_sc_l(8))
        dispatch_ips = [
            ip for ip, c in sim.stats.items() if c.executions < 200
        ]
        assert len(dispatch_ips) > 60  # many static, rarely-executed branches

    def test_fraction_validation(self):
        b = ProgramBuilder("t")
        with pytest.raises(ValueError):
            build_rare_dispatch_kernel(
                b, "k", 4, 1, random.Random(0),
                hard_fraction=0.8, patterned_fraction=0.4,
            )

    def test_shape_validation(self):
        b = ProgramBuilder("t")
        with pytest.raises(ValueError):
            build_rare_dispatch_kernel(b, "k", 0, 1, random.Random(0))


class TestWorkingSet:
    def test_small_working_set_fully_learned(self):
        prog, res, _ = harness(
            lambda b: build_periodic_workingset_kernel(
                b, "k", 20, random.Random(1)
            ),
            iterations=40,
            instructions=120_000,
        )
        sim = simulate_trace(res.trace, make_tage_sc_l(64), warmup_branches=4000)
        assert sim.accuracy > 0.97

    def test_large_working_set_capacity_sensitive(self):
        prog, res, _ = harness(
            lambda b: build_periodic_workingset_kernel(
                b, "k", 500, random.Random(1)
            ),
            iterations=10,
            instructions=200_000,
        )
        small = simulate_trace(res.trace, make_tage_sc_l(8), warmup_branches=5000)
        big = simulate_trace(res.trace, make_tage_sc_l(1024), warmup_branches=5000)
        assert big.accuracy > small.accuracy

    def test_validation(self):
        b = ProgramBuilder("t")
        with pytest.raises(ValueError):
            build_periodic_workingset_kernel(b, "k", 0, random.Random(0))


class TestColdChecks:
    def test_rarely_taken_and_accurate(self):
        prog, res, _ = harness(
            lambda b: build_cold_check_kernel(b, "k", num_checks=4, take_one_in=512),
            iterations=200,
        )
        cond = res.trace.conditional_mask
        taken_rate = res.trace.taken[cond].mean()
        assert taken_rate < 0.6  # check branches almost never taken
        sim = simulate_trace(res.trace, make_tage_sc_l(8), warmup_branches=500)
        assert sim.accuracy > 0.97

    def test_validation(self):
        b = ProgramBuilder("t")
        with pytest.raises(ValueError):
            build_cold_check_kernel(b, "k", num_checks=0)
