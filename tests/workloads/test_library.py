"""Tests for trace serialization and the trace library."""

import numpy as np
import pytest

from repro.core.types import BranchTrace
from repro.workloads import WORKLOADS_BY_NAME
from repro.workloads.library import TraceLibrary, load_trace, save_trace


def sample_trace(n=200):
    rng = np.random.default_rng(0)
    return BranchTrace(
        ips=rng.integers(0x1000, 0x9000, n),
        taken=rng.integers(0, 2, n),
        targets=rng.integers(0x1000, 0x9000, n),
        kinds=rng.choice([0, 0, 0, 1, 2, 3, 4], n),
        instr_indices=np.cumsum(rng.integers(1, 8, n)),
        instr_count=10_000,
    )


class TestSerialization:
    def test_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.ips, trace.ips)
        np.testing.assert_array_equal(loaded.taken, trace.taken)
        np.testing.assert_array_equal(loaded.targets, trace.targets)
        np.testing.assert_array_equal(loaded.kinds, trace.kinds)
        np.testing.assert_array_equal(loaded.instr_indices, trace.instr_indices)
        assert loaded.instr_count == trace.instr_count

    def test_creates_parent_dirs(self, tmp_path):
        save_trace(sample_trace(), tmp_path / "a" / "b" / "t.npz")
        assert (tmp_path / "a" / "b" / "t.npz").exists()

    def test_version_check(self, tmp_path):
        trace = sample_trace(10)
        path = tmp_path / "t.npz"
        np.savez_compressed(
            path, version=np.int64(999), ips=trace.ips, taken=trace.taken,
            targets=trace.targets, kinds=trace.kinds,
            instr_indices=trace.instr_indices,
            instr_count=np.int64(trace.instr_count),
        )
        with pytest.raises(ValueError):
            load_trace(path)


class TestTraceLibrary:
    def test_generate_then_reload(self, tmp_path):
        lib = TraceLibrary(tmp_path)
        wt1 = lib.get("605.mcf_s", 0, instructions=30_000)
        assert not wt1.metadata.get("from_library")
        assert lib.contains("605.mcf_s", 0, wt1.trace.instr_count)

        lib2 = TraceLibrary(tmp_path)  # fresh instance reads the manifest
        wt2 = lib2.get("605.mcf_s", 0, instructions=wt1.trace.instr_count)
        assert wt2.metadata.get("from_library")
        np.testing.assert_array_equal(wt1.trace.ips, wt2.trace.ips)
        np.testing.assert_array_equal(wt1.trace.taken, wt2.trace.taken)

    def test_distinct_inputs_stored_separately(self, tmp_path):
        lib = TraceLibrary(tmp_path)
        wt0 = lib.get("605.mcf_s", 0, instructions=20_000)
        wt1 = lib.get("605.mcf_s", 1, instructions=20_000)
        assert len(lib) == 2
        keys = set(lib)
        assert ("605.mcf_s", 0, wt0.trace.instr_count) in keys
        assert ("605.mcf_s", 1, wt1.trace.instr_count) in keys

    def test_manifest_entries(self, tmp_path):
        lib = TraceLibrary(tmp_path)
        wt = lib.get("rdbms", 0, instructions=20_000)
        entries = lib.entries()
        assert len(entries) == 1
        assert entries[0]["benchmark"] == "rdbms"
        assert entries[0]["branches"] == len(wt.trace)

    def test_unknown_benchmark(self, tmp_path):
        with pytest.raises(KeyError):
            TraceLibrary(tmp_path).get("nope", 0)

    def test_custom_spec(self, tmp_path):
        spec = WORKLOADS_BY_NAME["nosql"]
        lib = TraceLibrary(tmp_path)
        wt = lib.get("nosql", 0, instructions=15_000, spec=spec)
        assert wt.benchmark == "nosql"
